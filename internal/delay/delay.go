// Package delay turns a staged, flow-analyzed transistor netlist into
// timing edges: directed (from-node → to-node) delay arcs with separate
// rise and fall values, computed from RC models in the style of 1983-era
// nMOS timing analyzers.
//
// The model per stage:
//
//   - A node falls through a conducting path of enhancement devices to GND.
//     The worst case over enumerated simple paths of the Elmore sum along
//     the path (each path node's capacitance times the resistance between
//     it and GND) gives the fall delay; each gate on the path contributes a
//     timing edge, because the last-arriving series input determines when
//     the path conducts.
//
//   - A node rises through its attached pullup: the depletion load in
//     ratioed logic (resistance RDep, always on), or an enhancement
//     precharge device (gated by a clock, degraded drive).
//
//   - Signal propagates through a pass device from its flow-source terminal
//     to its flow-sink terminal with delay R_pass × C_downstream, where
//     C_downstream is everything reachable onward through conducting pass
//     devices — the stepwise form of the Elmore delay of the pass tree.
//
// Rise and fall are asymmetric (ratioed logic) and edges carry an Invert
// flag: restoring stages invert (input rise causes output fall), pass
// propagation does not.
package delay

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"nmostv/internal/faultpoint"
	"nmostv/internal/netlist"
	"nmostv/internal/obs"
	"nmostv/internal/stage"
	"nmostv/internal/tech"
)

// Inf marks a transition an edge cannot cause.
var Inf = math.Inf(1)

// Phase masks: a transition whose conducting path runs through devices
// gated by a clock can only happen while that clock is high. MaskRise and
// MaskFall on an edge record which clock phases the corresponding
// transition requires.
const (
	// MaskPhi1 marks a path through a φ1-gated device.
	MaskPhi1 uint8 = 1 << 0
	// MaskPhi2 marks a path through a φ2-gated device.
	MaskPhi2 uint8 = 1 << 1
)

// PhaseBit returns the mask bit for a clock phase number (1 or 2).
func PhaseBit(phase int) uint8 {
	if phase == 2 {
		return MaskPhi2
	}
	return MaskPhi1
}

// clockMask returns the phase requirement contributed by a device gated by
// node g: a mask bit if g is a clock, else 0.
func clockMask(g *netlist.Node) uint8 {
	if g.IsClock() {
		return PhaseBit(g.Phase)
	}
	return 0
}

// Edge is one directed timing arc.
type Edge struct {
	// From is the causing node (a gate input, clock, or pass-network
	// upstream node).
	From *netlist.Node
	// To is the affected node.
	To *netlist.Node
	// DRise is the delay in ns from the causing transition of From to To
	// rising; Inf if this edge cannot make To rise. For Invert edges the
	// causing transition is From falling, otherwise From rising.
	DRise float64
	// DFall is the delay in ns to To falling (caused by From rising if
	// Invert, else From falling).
	DFall float64
	// MaskRise and MaskFall record which clock phases must be high for
	// the corresponding transition's conducting path (0 = unconditional).
	MaskRise, MaskFall uint8
	// Invert is true for restoring (gate-like) arcs, false for pass
	// propagation and precharge arcs.
	Invert bool
	// GateArc is true for arcs launched by a device's gate *rising*
	// (opening a pass transistor or a precharge pullup): both output
	// transitions are caused by From rising; From falling causes
	// nothing (the device merely turns off).
	GateArc bool
	// Via is a representative device for reporting.
	Via *netlist.Transistor
}

func (e Edge) String() string {
	pol := "pass"
	if e.Invert {
		pol = "inv"
	}
	return fmt.Sprintf("%s -> %s [%s rise=%.4g fall=%.4g]", e.From, e.To, pol, e.DRise, e.DFall)
}

// Options tunes the edge builder.
type Options struct {
	// MaxPaths bounds GND-path enumeration per node; beyond it the
	// builder falls back to a single conservative pseudo-path using the
	// maximum observed resistance. Default 64.
	MaxPaths int
	// MaxDepth bounds the series length of an enumerated path.
	// Default 32.
	MaxDepth int
	// MaxSteps bounds the total DFS work per node during GND-path
	// enumeration; unoriented dense pass networks otherwise explode
	// combinatorially. Default 20000.
	MaxSteps int
	// SetHigh and SetLow name nodes the analysis holds at constant
	// values — TV-style case analysis. Devices gated by a SetLow node
	// never conduct (their paths vanish); SetHigh gates conduct
	// permanently but never launch transitions. Unknown names are
	// ignored (the case may name nodes absent from a partial design).
	SetHigh, SetLow []string
	// Workers sets how many goroutines build stage edges concurrently.
	// 0 (the default) uses one per CPU; 1 forces a serial build. The
	// result is bit-identical at every worker count: stages are
	// electrically independent (every arc lands on a node owned by
	// exactly one stage), and the per-stage edge buffers are merged in
	// stage-index order.
	Workers int
	// Obs receives build phase spans and the shard-cache hit/miss
	// counters; nil disables instrumentation.
	Obs *obs.Obs
}

func (o Options) withDefaults() Options {
	if o.MaxPaths <= 0 {
		o.MaxPaths = 64
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 32
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 20000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Model is the computed set of timing edges for a netlist.
type Model struct {
	// Edges holds every arc, deterministically ordered.
	Edges []Edge
	// Caps[i] is the total capacitance in pF seen at node index i
	// (extracted wire cap + gate loading + diffusion loading).
	Caps []float64
	// Truncated counts nodes whose GND-path enumeration hit MaxPaths and
	// used the conservative fallback.
	Truncated int
}

// NodeCap returns the total loading of one node in pF under params p:
// extracted capacitance plus the gate capacitance of every device the node
// gates plus the diffusion capacitance of every channel terminal on it.
func NodeCap(n *netlist.Node, p tech.Params) float64 {
	c := n.Cap
	for _, t := range n.Gates {
		c += p.CGateOf(t.W, t.L)
	}
	for _, t := range n.Terms {
		c += p.CDiffOf(t.W)
	}
	return c
}

// ComputeCaps returns the per-node-index total loading (NodeCap) for
// every node of the netlist — the Caps array of a Model built under p.
func ComputeCaps(nl *netlist.Netlist, p tech.Params) []float64 {
	caps := make([]float64, len(nl.Nodes))
	for _, n := range nl.Nodes {
		caps[n.Index] = NodeCap(n, p)
	}
	return caps
}

// forcedMap resolves the case-analysis constant lists against the netlist.
func forcedMap(nl *netlist.Netlist, opt Options) map[*netlist.Node]bool {
	forced := make(map[*netlist.Node]bool)
	for _, name := range opt.SetHigh {
		if n := nl.Lookup(name); n != nil {
			forced[n] = true
		}
	}
	for _, name := range opt.SetLow {
		if n := nl.Lookup(name); n != nil {
			forced[n] = false
		}
	}
	return forced
}

// shard is one stage's edge buffer: shards merge in stage-index order, so
// concatenation reproduces the serial append order exactly.
type shard struct {
	edges     []Edge
	truncated int
}

// buildShards computes the shards for the stage indices listed in todo
// using the option's worker pool. Slots not listed are left untouched.
// The context is polled once per shard: cancellation (or the
// "delay.build.shard" fault point) aborts the build with the first error
// and the caller must discard the partially filled shards.
func buildShards(ctx context.Context, nl *netlist.Netlist, st *stage.Result, p tech.Params, opt Options,
	caps []float64, forced map[*netlist.Node]bool, shards []shard, todo []int) error {
	stages := st.Stages
	buildOne := func(b *builder, si int) {
		b.edges = nil
		b.truncated = 0
		clear(b.merged)
		b.stageEdges(stages[si])
		shards[si] = shard{edges: b.edges, truncated: b.truncated}
	}
	var (
		stop     atomic.Bool
		stopOnce sync.Once
		stopErr  error
	)
	fail := func(err error) {
		stopOnce.Do(func() {
			stopErr = err
			stop.Store(true)
		})
	}
	// check polls for an abort before each shard build.
	check := func() bool {
		if stop.Load() {
			return false
		}
		if err := ctx.Err(); err != nil {
			fail(err)
			return false
		}
		if err := faultpoint.Hit("delay.build.shard"); err != nil {
			fail(fmt.Errorf("delay: build shard: %w", err))
			return false
		}
		return true
	}
	workers := opt.Workers
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		b := newBuilder(nl, st, p, opt, caps, forced)
		for _, si := range todo {
			if !check() {
				break
			}
			buildOne(b, si)
		}
		return stopErr
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := newBuilder(nl, st, p, opt, caps, forced)
			for {
				k := int(next.Add(1)) - 1
				if k >= len(todo) || !check() {
					return
				}
				buildOne(b, todo[k])
			}
		}()
	}
	wg.Wait()
	return stopErr
}

// mergeShards concatenates the shards in stage order into m.Edges and
// applies the deterministic global sort.
func mergeShards(m *Model, shards []shard) {
	total := 0
	for i := range shards {
		total += len(shards[i].edges)
	}
	m.Edges = make([]Edge, 0, total)
	m.Truncated = 0
	for i := range shards {
		m.Edges = append(m.Edges, shards[i].edges...)
		m.Truncated += shards[i].truncated
	}
	// Sort an index permutation instead of the Edge structs themselves:
	// swapping 4-byte indices avoids moving pointer-bearing structs (and
	// their write barriers) O(n log n) times, then one pass places each
	// edge. The index tiebreak keeps the order stable, i.e. identical to
	// the sort.SliceStable this replaces.
	idx := make([]int32, len(m.Edges))
	for i := range idx {
		idx[i] = int32(i)
	}
	sort.Slice(idx, func(i, j int) bool {
		a, c := &m.Edges[idx[i]], &m.Edges[idx[j]]
		if a.From.Index != c.From.Index {
			return a.From.Index < c.From.Index
		}
		if a.To.Index != c.To.Index {
			return a.To.Index < c.To.Index
		}
		if a.Invert != c.Invert {
			return !a.Invert
		}
		return idx[i] < idx[j]
	})
	sorted := make([]Edge, len(m.Edges))
	for i, j := range idx {
		sorted[i] = m.Edges[j]
	}
	m.Edges = sorted
}

// Build computes the timing edges for the netlist. The netlist must be
// finalized, staged, and flow-analyzed (or flow.Reset for the pessimistic
// ablation). With Options.Workers > 1 the per-stage edge computation (GND
// path enumeration, Elmore sums) is sharded across a worker pool; the
// per-stage buffers are merged in stage order, so the output is
// bit-identical to a serial build.
//
// Build cannot be canceled; interruptible callers (the daemon) use
// BuildCtx. With a background context a build can only fail through an
// armed fault point, which never happens outside chaos tests, so Build
// panics on that path rather than growing an error return every batch
// caller must thread.
func Build(nl *netlist.Netlist, st *stage.Result, p tech.Params, opt Options) *Model {
	m, err := BuildCtx(context.Background(), nl, st, p, opt)
	if err != nil {
		panic(fmt.Sprintf("delay: uncancelable build failed: %v", err))
	}
	return m
}

// BuildCtx is Build with cancellation: the context is polled once per
// stage shard, and a canceled build returns the context's error with no
// model.
func BuildCtx(ctx context.Context, nl *netlist.Netlist, st *stage.Result, p tech.Params, opt Options) (*Model, error) {
	opt = opt.withDefaults()
	defer opt.Obs.Span("delay-build").End()
	m := &Model{Caps: ComputeCaps(nl, p)}
	forced := forcedMap(nl, opt)
	shards := make([]shard, len(st.Stages))
	todo := make([]int, len(st.Stages))
	for i := range todo {
		todo[i] = i
	}
	if err := buildShards(ctx, nl, st, p, opt, m.Caps, forced, shards, todo); err != nil {
		return nil, err
	}
	mergeShards(m, shards)
	return m, nil
}

type edgeKey struct {
	from, to           int
	invert, gateArc    bool
	maskRise, maskFall uint8
}

// builder computes edges one stage at a time. Each worker owns one
// builder: the netlist, stage partition, caps, and forced map are shared
// read-only; edges, merged, and truncated are reset per stage.
type builder struct {
	nl   *netlist.Netlist
	st   *stage.Result
	p    tech.Params
	opt  Options
	caps []float64 // shared read-only node loading (Model.Caps)
	// edges and truncated accumulate the current stage's output.
	edges     []Edge
	truncated int
	merged    map[edgeKey]int // key -> index into edges, this stage only
	// forced maps case-analysis constants: node -> held value.
	forced map[*netlist.Node]bool
	// srcMemo caches sourceDelays results: [rise, fall]. Sound across
	// stages (pass recursion never leaves a channel-connected component)
	// but owned per worker.
	srcMemo map[*netlist.Node][2]float64
	// visiting guards sourceDelays recursion against pass-network
	// cycles.
	visiting map[*netlist.Node]bool
}

func newBuilder(nl *netlist.Netlist, st *stage.Result, p tech.Params,
	opt Options, caps []float64, forced map[*netlist.Node]bool) *builder {
	return &builder{nl: nl, st: st, p: p, opt: opt, caps: caps,
		forced:   forced,
		merged:   make(map[edgeKey]int),
		srcMemo:  make(map[*netlist.Node][2]float64),
		visiting: make(map[*netlist.Node]bool)}
}

// sourceDelays returns the worst-case RC delay (rise, fall) in ns from
// the nearest driving structures to node u with every pass conducting —
// the time for u's value to re-establish through its drivers once a
// downstream device opens. Inputs and clocks are ideal (0); restored
// nodes pay their pullup / worst pulldown-path Elmore; pass intermediates
// accumulate their upstream source plus the chain steps. Gate arcs use
// this so that opening a pass transistor charges its load through the
// real upstream resistance, matching (conservatively) what the
// switch-level referee computes.
func (b *builder) sourceDelays(u *netlist.Node) (rise, fall float64) {
	if v, ok := b.srcMemo[u]; ok {
		return v[0], v[1]
	}
	if u.IsSupply() || u.IsClock() || u.Flags.Has(netlist.FlagInput) {
		b.srcMemo[u] = [2]float64{0, 0}
		return 0, 0
	}
	if b.visiting[u] {
		return Inf, Inf // cycle: no independent source along this branch
	}
	b.visiting[u] = true
	rise, fall = Inf, Inf

	// Own restoring structures.
	rise = b.staticRiseDelay(u)
	for _, t := range u.Terms {
		if t.Role == netlist.RolePullup && t.Kind == netlist.Enh &&
			!t.Gate.IsSupply() && !b.deviceOff(t) {
			if d := b.deviceR(t) * b.downstreamCap(u, t); d < rise {
				rise = d
			}
		}
	}
	if paths, _ := b.gndPaths(u); len(paths) > 0 {
		fall = 0
		for _, path := range paths {
			if d := b.pathFallDelay(u, path); d > fall {
				fall = d
			}
		}
	}

	// Upstream pass sources: worst case over the alternatives that have
	// a source at all.
	for _, t := range u.Terms {
		if t.Role != netlist.RolePass || b.deviceOff(t) || !t.ConductsToward(u) {
			continue
		}
		w := t.Other(u)
		if w == nil || w.IsSupply() {
			continue
		}
		wr, wf := b.sourceDelays(w)
		step := b.deviceR(t) * b.downstreamCap(u, t)
		if cand := wr + step; !math.IsInf(wr, 1) && (math.IsInf(rise, 1) || cand > rise) {
			rise = cand
		}
		if cand := wf + step; !math.IsInf(wf, 1) && (math.IsInf(fall, 1) || cand > fall) {
			fall = cand
		}
	}

	delete(b.visiting, u)
	b.srcMemo[u] = [2]float64{rise, fall}
	return rise, fall
}

// deviceOff reports whether case analysis holds the device permanently
// non-conducting (an enhancement device gated by a forced-low node).
func (b *builder) deviceOff(t *netlist.Transistor) bool {
	if t.Kind != netlist.Enh {
		return false
	}
	v, ok := b.forced[t.Gate]
	return ok && !v
}

// isForced reports whether the node is held constant by case analysis.
func (b *builder) isForced(n *netlist.Node) bool {
	_, ok := b.forced[n]
	return ok
}

// addEdge merges worst-case delays for duplicate (from,to,invert) arcs.
func (b *builder) addEdge(e Edge) {
	if e.From == e.To || e.From.IsSupply() {
		return
	}
	if b.isForced(e.From) || b.isForced(e.To) {
		return // constants neither launch nor receive transitions
	}
	if math.IsInf(e.DRise, 1) && math.IsInf(e.DFall, 1) {
		return // an arc that can cause nothing
	}
	k := edgeKey{e.From.Index, e.To.Index, e.Invert, e.GateArc, e.MaskRise, e.MaskFall}
	if i, ok := b.merged[k]; ok {
		old := &b.edges[i]
		old.DRise = mergeDelay(old.DRise, e.DRise)
		old.DFall = mergeDelay(old.DFall, e.DFall)
		return
	}
	b.merged[k] = len(b.edges)
	b.edges = append(b.edges, e)
}

// mergeDelay takes the worst case of two delays where Inf means the
// transition is impossible via that arc: any finite delay dominates Inf
// (the arc *can* cause the transition), and among finite values the larger
// wins.
func mergeDelay(a, c float64) float64 {
	switch {
	case math.IsInf(a, 1):
		return c
	case math.IsInf(c, 1):
		return a
	case c > a:
		return c
	default:
		return a
	}
}

// DeviceR returns the effective channel resistance in kΩ of a device in
// its structural role: depletion loads use RDep, pass devices and
// enhancement pullups (degraded gate drive) use RPass, grounded-source
// pulldowns use REnh.
func DeviceR(t *netlist.Transistor, p tech.Params) float64 {
	switch {
	case t.Kind == netlist.Dep:
		return p.RLoad(t.W, t.L)
	case t.Role == netlist.RolePass, t.Role == netlist.RolePullup:
		return p.RPassDevice(t.W, t.L)
	default:
		return p.RPulldown(t.W, t.L)
	}
}

func (b *builder) deviceR(t *netlist.Transistor) float64 { return DeviceR(t, b.p) }

// downstreamCap returns the capacitance in pF at node v plus everything
// reachable onward through conducting pass devices, excluding travel back
// through device via. Visited tracking makes it safe on cyclic pass
// structures (each node counted once — the tree-Elmore view).
func (b *builder) downstreamCap(v *netlist.Node, via *netlist.Transistor) float64 {
	seen := map[*netlist.Node]bool{v: true}
	total := 0.0
	stack := []*netlist.Node{v}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		total += b.caps[n.Index]
		for _, t := range n.Terms {
			if t == via || t.Role != netlist.RolePass || b.deviceOff(t) {
				continue
			}
			o := t.Other(n)
			if o == nil || o.IsSupply() || seen[o] {
				continue
			}
			if !t.ConductsToward(o) {
				continue
			}
			seen[o] = true
			stack = append(stack, o)
		}
	}
	return total
}

// interestingNodes returns the stage nodes whose fall paths are worth
// enumerating: anything observable (fans out to gates, primary output,
// storage) or restored (has an attached pullup).
func interestingNodes(s *stage.Stage) []*netlist.Node {
	var out []*netlist.Node
	for _, n := range s.Nodes {
		if len(n.Gates) > 0 || n.Flags.Has(netlist.FlagOutput) ||
			n.Flags.Has(netlist.FlagStorage) || hasPullup(n) {
			out = append(out, n)
		}
	}
	return out
}

func hasPullup(n *netlist.Node) bool {
	for _, t := range n.Terms {
		if t.Role == netlist.RolePullup {
			return true
		}
	}
	return false
}

func (b *builder) stageEdges(s *stage.Stage) {
	// Pass-propagation arcs: for every pass device and every allowed
	// direction, node-to-node and gate-to-node arcs.
	for _, t := range s.Trans {
		if t.Role != netlist.RolePass || b.deviceOff(t) {
			continue
		}
		dirs := [][2]*netlist.Node{}
		switch t.Flow {
		case netlist.FlowAB:
			dirs = append(dirs, [2]*netlist.Node{t.A, t.B})
		case netlist.FlowBA:
			dirs = append(dirs, [2]*netlist.Node{t.B, t.A})
		default:
			dirs = append(dirs,
				[2]*netlist.Node{t.A, t.B},
				[2]*netlist.Node{t.B, t.A})
		}
		mask := clockMask(t.Gate)
		for _, d := range dirs {
			u, v := d[0], d[1]
			del := b.deviceR(t) * b.downstreamCap(v, t)
			b.addEdge(Edge{From: u, To: v, DRise: del, DFall: del,
				MaskRise: mask, MaskFall: mask, Via: t})
			// The gate opening the device also launches the value,
			// which must re-establish through the upstream drivers:
			// their source delay rides on top of this device's step.
			ur, uf := b.sourceDelays(u)
			b.addEdge(Edge{From: t.Gate, To: v,
				DRise: ur + del, DFall: uf + del,
				MaskRise: mask, MaskFall: mask, GateArc: true, Via: t})
		}
	}

	// Restoring arcs per interesting node: rise via pullup, fall via
	// enumerated GND paths. A stage with no GND connection at all (a
	// pure pass network) has nothing to enumerate.
	for _, o := range interestingNodes(s) {
		riseD := b.staticRiseDelay(o)
		var paths [][]*netlist.Transistor
		if s.HasPulldown {
			var truncated bool
			paths, truncated = b.gndPaths(o)
			if truncated {
				b.truncated++
			}
		}
		for _, path := range paths {
			dfall := b.pathFallDelay(o, path)
			var pathMask uint8
			for _, t := range path {
				pathMask |= clockMask(t.Gate)
			}
			for _, t := range path {
				if t.Gate.IsSupply() {
					continue
				}
				b.addEdge(Edge{
					From:     t.Gate,
					To:       o,
					DRise:    riseD,
					DFall:    dfall,
					MaskFall: pathMask,
					Invert:   true,
					Via:      t,
				})
			}
		}
		// Gated enhancement pullups (precharge devices and the like):
		// a non-inverting rise-only arc from the gating signal.
		for _, t := range o.Terms {
			if t.Role != netlist.RolePullup || t.Kind != netlist.Enh || t.Gate.IsSupply() {
				continue
			}
			if b.deviceOff(t) || b.isForced(t.Gate) {
				continue // handled by staticRiseDelay when forced high
			}
			b.addEdge(Edge{
				From:     t.Gate,
				To:       o,
				DRise:    b.deviceR(t) * b.downstreamCap(o, t),
				DFall:    Inf,
				MaskRise: clockMask(t.Gate),
				GateArc:  true,
				Via:      t,
			})
		}
	}
}

// staticRiseDelay computes the rise delay of node o through its always-on
// pullups (depletion loads, or enhancement devices gated by VDD). Inf if o
// has no static pullup — dynamic nodes rise only through gated devices.
func (b *builder) staticRiseDelay(o *netlist.Node) float64 {
	d := Inf
	for _, t := range o.Terms {
		if t.Role != netlist.RolePullup {
			continue
		}
		forcedHigh, forced := b.forced[t.Gate]
		alwaysOn := t.Kind == netlist.Dep || t.Gate == b.nl.VDD ||
			(forced && forcedHigh)
		if !alwaysOn {
			continue
		}
		if del := b.deviceR(t) * b.downstreamCap(o, t); del < d {
			d = del
		}
	}
	return d
}

// gndPaths enumerates simple conducting paths from node o to GND through
// enhancement devices, respecting flow direction (steps move away from o).
// It returns at most MaxPaths paths; if the bound is hit it returns the
// enumerated prefix plus reports truncation (the caller then still has the
// worst of the enumerated paths — in practice stages are small and
// enumeration is exhaustive).
func (b *builder) gndPaths(o *netlist.Node) (paths [][]*netlist.Transistor, truncated bool) {
	var cur []*netlist.Transistor
	steps := 0
	onPath := map[*netlist.Node]bool{o: true}
	var dfs func(n *netlist.Node, depth int) bool
	dfs = func(n *netlist.Node, depth int) bool {
		if depth > b.opt.MaxDepth {
			return true
		}
		if steps += len(n.Terms); steps > b.opt.MaxSteps {
			return false
		}
		for _, t := range n.Terms {
			if t.Kind != netlist.Enh || b.deviceOff(t) {
				continue
			}
			if t.Role == netlist.RolePullup {
				continue
			}
			other := t.Other(n)
			if other == nil {
				continue
			}
			if other == b.nl.GND {
				path := make([]*netlist.Transistor, len(cur)+1)
				copy(path, cur)
				path[len(cur)] = t
				paths = append(paths, path)
				if len(paths) >= b.opt.MaxPaths {
					return false
				}
				continue
			}
			if other.IsSupply() || onPath[other] {
				continue
			}
			// Never continue *through* a node that has its own pullup
			// (a restored gate output or a precharged node): discharge
			// paths re-entering another driver's network are false
			// paths — that driver's own fall plus pass propagation
			// models them. Stack intermediates have no pullup and pass
			// freely.
			if hasPullup(other) {
				continue
			}
			// Orientation prunes walking upstream into another driver's
			// pass network (whose discharge is modeled as that driver
			// falling and propagating through the pass arc instead). A
			// device oriented strictly toward n means other is upstream.
			if t.Role == netlist.RolePass && t.Flow != netlist.FlowBoth && t.ConductsToward(n) {
				continue
			}
			cur = append(cur, t)
			onPath[other] = true
			ok := dfs(other, depth+1)
			delete(onPath, other)
			cur = cur[:len(cur)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	complete := dfs(o, 0)
	return paths, !complete
}

// pathFallDelay computes the Elmore discharge delay of node o through the
// given path (ordered from o toward GND): Σ over path nodes of that node's
// capacitance times the total resistance between it and GND. Node o itself
// carries its full downstream load.
func (b *builder) pathFallDelay(o *netlist.Node, path []*netlist.Transistor) float64 {
	// Total path resistance first.
	total := 0.0
	for _, t := range path {
		total += b.deviceR(t)
	}
	d := total * b.downstreamCapExcludingPath(o, path)
	// Intermediate nodes: walk from o; after traversing device i the
	// remaining resistance to GND shrinks.
	n := o
	remaining := total
	last := len(path) - 1
	if last < 0 {
		last = 0
	}
	for _, t := range path[:last] {
		remaining -= b.deviceR(t)
		n = t.Other(n)
		if n == nil || n.IsSupply() {
			break
		}
		d += remaining * b.caps[n.Index]
	}
	return d
}

// downstreamCapExcludingPath is downstreamCap but never traverses the first
// path device (discharge current leaves o through it; the load hanging the
// other way off o still must discharge through the path).
func (b *builder) downstreamCapExcludingPath(o *netlist.Node, path []*netlist.Transistor) float64 {
	var via *netlist.Transistor
	if len(path) > 0 {
		via = path[0]
	}
	return b.downstreamCap(o, via)
}
