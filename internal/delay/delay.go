// Package delay turns a staged, flow-analyzed transistor netlist into
// timing edges: directed (from-node → to-node) delay arcs with separate
// rise and fall values, computed from RC models in the style of 1983-era
// nMOS timing analyzers.
//
// The model per stage:
//
//   - A node falls through a conducting path of enhancement devices to GND.
//     The worst case over enumerated simple paths of the Elmore sum along
//     the path (each path node's capacitance times the resistance between
//     it and GND) gives the fall delay; each gate on the path contributes a
//     timing edge, because the last-arriving series input determines when
//     the path conducts.
//
//   - A node rises through its attached pullup: the depletion load in
//     ratioed logic (resistance RDep, always on), or an enhancement
//     precharge device (gated by a clock, degraded drive).
//
//   - Signal propagates through a pass device from its flow-source terminal
//     to its flow-sink terminal with delay R_pass × C_downstream, where
//     C_downstream is everything reachable onward through conducting pass
//     devices — the stepwise form of the Elmore delay of the pass tree.
//
// Rise and fall are asymmetric (ratioed logic) and edges carry an Invert
// flag: restoring stages invert (input rise causes output fall), pass
// propagation does not.
//
// Edges reference nodes by index (Node.Index), not by pointer: the hot
// relaxation loops downstream read only flat arrays, and the builder itself
// walks an index-based snapshot (see graph.go) rather than the netlist's
// pointer slices.
package delay

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"nmostv/internal/faultpoint"
	"nmostv/internal/netlist"
	"nmostv/internal/obs"
	"nmostv/internal/stage"
	"nmostv/internal/tech"
)

// Inf marks a transition an edge cannot cause.
var Inf = math.Inf(1)

// Phase masks: a transition whose conducting path runs through devices
// gated by a clock can only happen while that clock is high. MaskRise and
// MaskFall on an edge record which clock phases the corresponding
// transition requires.
const (
	// MaskPhi1 marks a path through a φ1-gated device.
	MaskPhi1 uint8 = 1 << 0
	// MaskPhi2 marks a path through a φ2-gated device.
	MaskPhi2 uint8 = 1 << 1
)

// PhaseBit returns the mask bit for a clock phase number (1 or 2).
func PhaseBit(phase int) uint8 {
	if phase == 2 {
		return MaskPhi2
	}
	return MaskPhi1
}

// clockMask returns the phase requirement contributed by a device gated by
// node g: a mask bit if g is a clock, else 0.
func clockMask(g *netlist.Node) uint8 {
	if g.IsClock() {
		return PhaseBit(g.Phase)
	}
	return 0
}

// Edge is one directed timing arc. From and To are node indices
// (Node.Index) into the netlist the model was built from; the model's
// NodeFlags/NodePhase arrays carry the node state the analyzer needs, so
// relaxation never touches *netlist.Node.
type Edge struct {
	// From is the causing node (a gate input, clock, or pass-network
	// upstream node).
	From int32
	// To is the affected node.
	To int32
	// DRise is the delay in ns from the causing transition of From to To
	// rising; Inf if this edge cannot make To rise. For Invert edges the
	// causing transition is From falling, otherwise From rising.
	DRise float64
	// DFall is the delay in ns to To falling (caused by From rising if
	// Invert, else From falling).
	DFall float64
	// MaskRise and MaskFall record which clock phases must be high for
	// the corresponding transition's conducting path (0 = unconditional).
	MaskRise, MaskFall uint8
	// Invert is true for restoring (gate-like) arcs, false for pass
	// propagation and precharge arcs.
	Invert bool
	// GateArc is true for arcs launched by a device's gate *rising*
	// (opening a pass transistor or a precharge pullup): both output
	// transitions are caused by From rising; From falling causes
	// nothing (the device merely turns off).
	GateArc bool
	// Via is the stable netlist ID (netlist.Transistor.ID, not the
	// positional index) of a representative device for reporting. An ID
	// instead of a pointer keeps the edge array pointer-free — the
	// garbage collector never scans the model's largest allocation — and
	// unlike an index it survives device removals, which renumber
	// positions under the delay cache's reused shards.
	Via int64
}

func (e Edge) String() string {
	pol := "pass"
	if e.Invert {
		pol = "inv"
	}
	return fmt.Sprintf("#%d -> #%d [%s rise=%.4g fall=%.4g]", e.From, e.To, pol, e.DRise, e.DFall)
}

// Options tunes the edge builder.
type Options struct {
	// MaxPaths bounds GND-path enumeration per node; beyond it the
	// builder falls back to a single conservative pseudo-path using the
	// maximum observed resistance. Default 64.
	MaxPaths int
	// MaxDepth bounds the series length of an enumerated path.
	// Default 32.
	MaxDepth int
	// MaxSteps bounds the total DFS work per node during GND-path
	// enumeration; unoriented dense pass networks otherwise explode
	// combinatorially. Default 20000.
	MaxSteps int
	// SetHigh and SetLow name nodes the analysis holds at constant
	// values — TV-style case analysis. Devices gated by a SetLow node
	// never conduct (their paths vanish); SetHigh gates conduct
	// permanently but never launch transitions. Unknown names are
	// ignored (the case may name nodes absent from a partial design).
	SetHigh, SetLow []string
	// Workers sets how many goroutines build stage edges concurrently.
	// 0 (the default) uses one per CPU; 1 forces a serial build. The
	// result is bit-identical at every worker count: stages are
	// electrically independent (every arc lands on a node owned by
	// exactly one stage), and the per-stage edge buffers are merged in
	// stage-index order.
	Workers int
	// Obs receives build phase spans and the shard-cache hit/miss
	// counters; nil disables instrumentation.
	Obs *obs.Obs
}

func (o Options) withDefaults() Options {
	if o.MaxPaths <= 0 {
		o.MaxPaths = 64
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 32
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 20000
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Model is the computed set of timing edges for a netlist.
type Model struct {
	// Edges holds every arc, deterministically ordered.
	Edges []Edge
	// Caps[i] is the total capacitance in pF seen at node index i
	// (extracted wire cap + gate loading + diffusion loading).
	Caps []float64
	// NodeFlags[i] and NodePhase[i] snapshot node i's annotations and
	// clock phase at build time. The analyzer reads node state from
	// these packed arrays — the netlist stays the mutable pointer-based
	// editing view, while analysis runs on this flat snapshot. Any edit
	// that changes a flag the model depends on changes stage
	// fingerprints and forces a rebuild, so the snapshot is never stale
	// for the edges it accompanies.
	NodeFlags []netlist.Flag
	NodePhase []int32
	// Truncated counts nodes whose GND-path enumeration hit MaxPaths and
	// used the conservative fallback.
	Truncated int
}

// IsClock reports whether node index i was annotated as a clock when the
// model was built.
func (m *Model) IsClock(i int32) bool { return m.NodeFlags[i]&netlist.FlagClock != 0 }

// snapshotNodes fills the model's per-node flag/phase arrays from the
// netlist's current state.
func (m *Model) snapshotNodes(nl *netlist.Netlist) {
	m.NodeFlags = make([]netlist.Flag, len(nl.Nodes))
	m.NodePhase = make([]int32, len(nl.Nodes))
	for i, n := range nl.Nodes {
		m.NodeFlags[i] = n.Flags
		m.NodePhase[i] = int32(n.Phase)
	}
}

// NodeCap returns the total loading of one node in pF under params p:
// extracted capacitance plus the gate capacitance of every device the node
// gates plus the diffusion capacitance of every channel terminal on it.
func NodeCap(n *netlist.Node, p tech.Params) float64 {
	c := n.Cap
	for _, t := range n.Gates {
		c += p.CGateOf(t.W, t.L)
	}
	for _, t := range n.Terms {
		c += p.CDiffOf(t.W)
	}
	return c
}

// ComputeCaps returns the per-node-index total loading (NodeCap) for
// every node of the netlist — the Caps array of a Model built under p.
func ComputeCaps(nl *netlist.Netlist, p tech.Params) []float64 {
	caps := make([]float64, len(nl.Nodes))
	for _, n := range nl.Nodes {
		caps[n.Index] = NodeCap(n, p)
	}
	return caps
}

// forcedMap resolves the case-analysis constant lists against the netlist.
func forcedMap(nl *netlist.Netlist, opt Options) map[*netlist.Node]bool {
	forced := make(map[*netlist.Node]bool)
	for _, name := range opt.SetHigh {
		if n := nl.Lookup(name); n != nil {
			forced[n] = true
		}
	}
	for _, name := range opt.SetLow {
		if n := nl.Lookup(name); n != nil {
			forced[n] = false
		}
	}
	return forced
}

// shard is one stage's edge buffer: shards merge in stage-index order, so
// concatenation reproduces the serial append order exactly.
type shard struct {
	edges     []Edge
	truncated int
}

// buildShards computes the shards for the stage indices listed in todo
// using the option's worker pool. Slots not listed are left untouched.
// The context is polled once per shard: cancellation (or the
// "delay.build.shard" fault point) aborts the build with the first error
// and the caller must discard the partially filled shards.
func buildShards(ctx context.Context, g *graph, st *stage.Result, opt Options,
	shards []shard, todo []int) error {
	stages := st.Stages
	buildOne := func(b *builder, si int) {
		b.beginShard()
		b.truncated = 0
		clear(b.merged)
		b.stageEdges(stages[si])
		shards[si] = shard{edges: b.finishShard(), truncated: b.truncated}
	}
	var (
		stop     atomic.Bool
		stopOnce sync.Once
		stopErr  error
	)
	fail := func(err error) {
		stopOnce.Do(func() {
			stopErr = err
			stop.Store(true)
		})
	}
	// check polls for an abort before each shard build.
	check := func() bool {
		if stop.Load() {
			return false
		}
		if err := ctx.Err(); err != nil {
			fail(err)
			return false
		}
		if err := faultpoint.Hit("delay.build.shard"); err != nil {
			fail(fmt.Errorf("delay: build shard: %w", err))
			return false
		}
		return true
	}
	workers := opt.Workers
	if workers > len(todo) {
		workers = len(todo)
	}
	if workers <= 1 {
		b := newBuilder(g, opt)
		for _, si := range todo {
			if !check() {
				break
			}
			buildOne(b, si)
		}
		b.release()
		return stopErr
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := newBuilder(g, opt)
			defer b.release()
			for {
				k := int(next.Add(1)) - 1
				if k >= len(todo) || !check() {
					return
				}
				buildOne(b, todo[k])
			}
		}()
	}
	wg.Wait()
	return stopErr
}

// mergeShards concatenates the shards in stage order into m.Edges and
// applies the deterministic global sort.
func mergeShards(m *Model, shards []shard) {
	total := 0
	m.Truncated = 0
	for i := range shards {
		total += len(shards[i].edges)
		m.Truncated += shards[i].truncated
	}
	// The canonical order is (From, To, Invert, shard concatenation
	// position). From is a dense node index, so a counting sort gets
	// there in O(E + N): count per source node, prefix-sum into bucket
	// starts, then scatter straight from the shard buffers into the
	// final array — shards visited in stage order keeps the scatter
	// stable, and no intermediate concatenation copy is needed. Each
	// bucket is one node's out-arcs (a handful of edges), finished with
	// a stable sort on (To, Invert). This replaces a global E·log E
	// comparison sort with two linear passes.
	nn := len(m.Caps)
	start := make([]int32, nn+1)
	for i := range shards {
		for j := range shards[i].edges {
			start[shards[i].edges[j].From+1]++
		}
	}
	for i := 0; i < nn; i++ {
		start[i+1] += start[i]
	}
	edges := make([]Edge, total)
	for i := range shards {
		for j := range shards[i].edges {
			e := &shards[i].edges[j]
			edges[start[e.From]] = *e
			start[e.From]++
		}
	}
	// start[i] is now the end of bucket i.
	lo := int32(0)
	for i := 0; i < nn; i++ {
		hi := start[i]
		if hi-lo > 1 {
			slices.SortStableFunc(edges[lo:hi], func(a, c Edge) int {
				if a.To != c.To {
					return int(a.To) - int(c.To)
				}
				if a.Invert != c.Invert {
					if a.Invert {
						return 1
					}
					return -1
				}
				return 0
			})
		}
		lo = hi
	}
	m.Edges = edges
}

// Build computes the timing edges for the netlist. The netlist must be
// finalized, staged, and flow-analyzed (or flow.Reset for the pessimistic
// ablation). With Options.Workers > 1 the per-stage edge computation (GND
// path enumeration, Elmore sums) is sharded across a worker pool; the
// per-stage buffers are merged in stage order, so the output is
// bit-identical to a serial build.
//
// Build cannot be canceled; interruptible callers (the daemon) use
// BuildCtx. With a background context a build can only fail through an
// armed fault point, which never happens outside chaos tests, so Build
// panics on that path rather than growing an error return every batch
// caller must thread.
func Build(nl *netlist.Netlist, st *stage.Result, p tech.Params, opt Options) *Model {
	m, err := BuildCtx(context.Background(), nl, st, p, opt)
	if err != nil {
		panic(fmt.Sprintf("delay: uncancelable build failed: %v", err))
	}
	return m
}

// BuildCtx is Build with cancellation: the context is polled once per
// stage shard, and a canceled build returns the context's error with no
// model.
func BuildCtx(ctx context.Context, nl *netlist.Netlist, st *stage.Result, p tech.Params, opt Options) (*Model, error) {
	opt = opt.withDefaults()
	defer opt.Obs.Span("delay-build").End()
	m := &Model{Caps: ComputeCaps(nl, p)}
	m.snapshotNodes(nl)
	forced := forcedMap(nl, opt)
	g := newGraph(nl, p, m.Caps, forced, nil)
	shards := make([]shard, len(st.Stages))
	todo := make([]int, len(st.Stages))
	for i := range todo {
		todo[i] = i
	}
	if err := buildShards(ctx, g, st, opt, shards, todo); err != nil {
		return nil, err
	}
	mergeShards(m, shards)
	return m, nil
}

type edgeKey struct {
	from, to           int32
	invert, gateArc    bool
	maskRise, maskFall uint8
}

// builder computes edges one stage at a time. Each worker owns one
// builder: the graph snapshot is shared read-only; edges, merged, and
// truncated are reset per stage. The index-keyed scratch arrays (source
// memo, DFS visited stamps, path buffers) are sized to the node count and
// recycled through builderPool across builds, so an incremental rebuild of
// a handful of stages does not reallocate O(nodes) scratch.
type builder struct {
	g   *graph
	opt Options
	// edges and truncated accumulate the current stage's output.
	edges     []Edge
	truncated int
	merged    map[edgeKey]int // key -> index into edges, this stage only
	// Shard buffers are carved from slab so a million small stages cost
	// dozens of allocations instead of one each. Shards hand their
	// carved slices to the caller, so the slab is append-only: slabOff
	// only advances, and a fresh slab replaces a full one.
	slab    []Edge
	slabOff int

	// Source-delay memo: srcGen[u] == gen marks srcRise/srcFall[u] valid.
	// Sound across stages (pass recursion never leaves a channel-connected
	// component) but owned per worker; gen bumps per build.
	gen              uint32
	srcGen           []uint32
	srcRise, srcFall []float64
	// visiting guards sourceDelays recursion against pass-network cycles.
	visiting []bool

	// downstreamCap scratch: epoch-stamped visited array plus DFS stack.
	epoch uint32
	seen  []uint32
	stack []int32

	// gndPaths scratch: on-path marks, the current device path, and the
	// flattened enumerated paths (pathDev sliced by pathEnd offsets).
	onPath  []bool
	cur     []int32
	pathDev []int32
	pathEnd []int32
	steps   int
}

// builderPool recycles builder scratch across buildShards calls so the
// incremental daemon's frequent small rebuilds stay allocation-light.
var builderPool sync.Pool

func newBuilder(g *graph, opt Options) *builder {
	b, _ := builderPool.Get().(*builder)
	if b == nil {
		b = &builder{merged: make(map[edgeKey]int)}
	}
	b.g, b.opt = g, opt
	nn := len(g.flags)
	if cap(b.srcGen) < nn {
		b.srcGen = make([]uint32, nn)
		b.srcRise = make([]float64, nn)
		b.srcFall = make([]float64, nn)
		b.visiting = make([]bool, nn)
		b.seen = make([]uint32, nn)
		b.onPath = make([]bool, nn)
		b.gen, b.epoch = 0, 0
	} else {
		b.srcGen = b.srcGen[:nn]
		b.srcRise = b.srcRise[:nn]
		b.srcFall = b.srcFall[:nn]
		b.visiting = b.visiting[:nn]
		b.seen = b.seen[:nn]
		b.onPath = b.onPath[:nn]
	}
	b.gen++
	if b.gen == 0 {
		clear(b.srcGen)
		b.gen = 1
	}
	return b
}

// release returns the builder's scratch to the pool. The graph reference
// is dropped so a pooled builder never pins a netlist snapshot.
func (b *builder) release() {
	b.g = nil
	b.edges = nil
	// slab and slabOff survive pooling deliberately: earlier slab
	// regions may be live in the shard cache, so the offset never
	// rewinds — a pooled builder resumes carving from the unused tail.
	clear(b.merged)
	builderPool.Put(b)
}

// slabEdges is the edge-slab granularity: big enough that a
// million-stage build allocates dozens of slabs instead of one buffer
// per stage, small enough that a cached shard pinning its slab wastes
// little.
const slabEdges = 1 << 16

// beginShard points b.edges at the slab's unused tail. Appends beyond
// the tail fall back to a normal reallocation, which finishShard
// detects.
func (b *builder) beginShard() {
	if b.slabOff == len(b.slab) {
		b.slab = make([]Edge, slabEdges)
		b.slabOff = 0
	}
	b.edges = b.slab[b.slabOff:b.slabOff:len(b.slab)]
}

// finishShard hands the accumulated edge buffer to the caller, claiming
// the carved slab region when the buffer still lives there. A shard that
// outgrew the tail owns its reallocated buffer and the tail stays free
// for the next shard.
func (b *builder) finishShard() []Edge {
	e := b.edges
	if len(e) > 0 && &e[0] == &b.slab[b.slabOff] {
		b.slabOff += len(e)
	}
	b.edges = nil
	return e
}

// sourceDelays returns the worst-case RC delay (rise, fall) in ns from
// the nearest driving structures to node u with every pass conducting —
// the time for u's value to re-establish through its drivers once a
// downstream device opens. Inputs and clocks are ideal (0); restored
// nodes pay their pullup / worst pulldown-path Elmore; pass intermediates
// accumulate their upstream source plus the chain steps. Gate arcs use
// this so that opening a pass transistor charges its load through the
// real upstream resistance, matching (conservatively) what the
// switch-level referee computes.
func (b *builder) sourceDelays(u int32) (rise, fall float64) {
	if b.srcGen[u] == b.gen {
		return b.srcRise[u], b.srcFall[u]
	}
	g := b.g
	if g.flags[u]&(netlist.FlagSupply|netlist.FlagClock|netlist.FlagInput) != 0 {
		b.srcGen[u] = b.gen
		b.srcRise[u], b.srcFall[u] = 0, 0
		return 0, 0
	}
	if b.visiting[u] {
		return Inf, Inf // cycle: no independent source along this branch
	}
	b.visiting[u] = true

	// Own restoring structures.
	rise = b.staticRiseDelay(u)
	fall = Inf
	for k := g.termStart[u]; k < g.termStart[u+1]; k++ {
		di := g.termDev[k]
		if g.role[di] == netlist.RolePullup && g.kind[di] == netlist.Enh &&
			!g.isSupply(g.dgate[di]) && !g.off[di] {
			if d := g.rEff[di] * b.downstreamCap(u, di); d < rise {
				rise = d
			}
		}
	}
	if np, _ := b.gndPaths(u); np > 0 {
		fall = 0
		start := int32(0)
		for pi := 0; pi < np; pi++ {
			end := b.pathEnd[pi]
			if d := b.pathFallDelay(u, b.pathDev[start:end]); d > fall {
				fall = d
			}
			start = end
		}
	}

	// Upstream pass sources: worst case over the alternatives that have
	// a source at all. (The GND paths above are fully consumed before
	// this recursion reuses the shared path buffers.)
	for k := g.termStart[u]; k < g.termStart[u+1]; k++ {
		di := g.termDev[k]
		if g.role[di] != netlist.RolePass || g.off[di] || !g.conductsToward(di, u) {
			continue
		}
		w := g.other(di, u)
		if g.isSupply(w) {
			continue
		}
		wr, wf := b.sourceDelays(w)
		step := g.rEff[di] * b.downstreamCap(u, di)
		if cand := wr + step; !math.IsInf(wr, 1) && (math.IsInf(rise, 1) || cand > rise) {
			rise = cand
		}
		if cand := wf + step; !math.IsInf(wf, 1) && (math.IsInf(fall, 1) || cand > fall) {
			fall = cand
		}
	}

	b.visiting[u] = false
	b.srcGen[u] = b.gen
	b.srcRise[u], b.srcFall[u] = rise, fall
	return rise, fall
}

// addEdge merges worst-case delays for duplicate (from,to,invert) arcs.
func (b *builder) addEdge(e Edge) {
	g := b.g
	if e.From == e.To || g.isSupply(e.From) {
		return
	}
	if g.forcedState[e.From] != 0 || g.forcedState[e.To] != 0 {
		return // constants neither launch nor receive transitions
	}
	if math.IsInf(e.DRise, 1) && math.IsInf(e.DFall, 1) {
		return // an arc that can cause nothing
	}
	k := edgeKey{e.From, e.To, e.Invert, e.GateArc, e.MaskRise, e.MaskFall}
	if i, ok := b.merged[k]; ok {
		old := &b.edges[i]
		old.DRise = mergeDelay(old.DRise, e.DRise)
		old.DFall = mergeDelay(old.DFall, e.DFall)
		return
	}
	b.merged[k] = len(b.edges)
	b.edges = append(b.edges, e)
}

// mergeDelay takes the worst case of two delays where Inf means the
// transition is impossible via that arc: any finite delay dominates Inf
// (the arc *can* cause the transition), and among finite values the larger
// wins.
func mergeDelay(a, c float64) float64 {
	switch {
	case math.IsInf(a, 1):
		return c
	case math.IsInf(c, 1):
		return a
	case c > a:
		return c
	default:
		return a
	}
}

// DeviceR returns the effective channel resistance in kΩ of a device in
// its structural role: depletion loads use RDep, pass devices and
// enhancement pullups (degraded gate drive) use RPass, grounded-source
// pulldowns use REnh.
func DeviceR(t *netlist.Transistor, p tech.Params) float64 {
	switch {
	case t.Kind == netlist.Dep:
		return p.RLoad(t.W, t.L)
	case t.Role == netlist.RolePass, t.Role == netlist.RolePullup:
		return p.RPassDevice(t.W, t.L)
	default:
		return p.RPulldown(t.W, t.L)
	}
}

// downstreamCap returns the capacitance in pF at node v plus everything
// reachable onward through conducting pass devices, excluding travel back
// through device via (-1 for none). Epoch-stamped visited tracking makes
// it safe on cyclic pass structures (each node counted once — the
// tree-Elmore view) without clearing scratch between calls.
func (b *builder) downstreamCap(v int32, via int32) float64 {
	g := b.g
	b.epoch++
	if b.epoch == 0 {
		clear(b.seen)
		b.epoch = 1
	}
	b.seen[v] = b.epoch
	total := 0.0
	b.stack = append(b.stack[:0], v)
	for len(b.stack) > 0 {
		n := b.stack[len(b.stack)-1]
		b.stack = b.stack[:len(b.stack)-1]
		total += g.caps[n]
		for k := g.termStart[n]; k < g.termStart[n+1]; k++ {
			di := g.termDev[k]
			if di == via || g.role[di] != netlist.RolePass || g.off[di] {
				continue
			}
			o := g.other(di, n)
			if g.isSupply(o) || b.seen[o] == b.epoch {
				continue
			}
			if !g.conductsToward(di, o) {
				continue
			}
			b.seen[o] = b.epoch
			b.stack = append(b.stack, o)
		}
	}
	return total
}

func (b *builder) stageEdges(s *stage.Stage) {
	g := b.g
	// Pass-propagation arcs: for every pass device and every allowed
	// direction, node-to-node and gate-to-node arcs.
	for _, t := range s.Trans {
		ti := int32(t.Index)
		if g.role[ti] != netlist.RolePass || g.off[ti] {
			continue
		}
		var dirs [2][2]int32
		nd := 0
		switch g.flow[ti] {
		case netlist.FlowAB:
			dirs[0] = [2]int32{g.da[ti], g.db[ti]}
			nd = 1
		case netlist.FlowBA:
			dirs[0] = [2]int32{g.db[ti], g.da[ti]}
			nd = 1
		default:
			dirs[0] = [2]int32{g.da[ti], g.db[ti]}
			dirs[1] = [2]int32{g.db[ti], g.da[ti]}
			nd = 2
		}
		mask := g.gmask[ti]
		for k := 0; k < nd; k++ {
			u, v := dirs[k][0], dirs[k][1]
			del := g.rEff[ti] * b.downstreamCap(v, ti)
			b.addEdge(Edge{From: u, To: v, DRise: del, DFall: del,
				MaskRise: mask, MaskFall: mask, Via: g.id[ti]})
			// The gate opening the device also launches the value,
			// which must re-establish through the upstream drivers:
			// their source delay rides on top of this device's step.
			ur, uf := b.sourceDelays(u)
			b.addEdge(Edge{From: g.dgate[ti], To: v,
				DRise: ur + del, DFall: uf + del,
				MaskRise: mask, MaskFall: mask, GateArc: true, Via: g.id[ti]})
		}
	}

	// Restoring arcs per interesting node — anything observable (fans out
	// to gates, primary output, storage) or restored (attached pullup):
	// rise via pullup, fall via enumerated GND paths. A stage with no GND
	// connection at all (a pure pass network) has nothing to enumerate.
	for _, n := range s.Nodes {
		o := int32(n.Index)
		if g.gateCnt[o] == 0 && g.flags[o]&(netlist.FlagOutput|netlist.FlagStorage) == 0 &&
			!g.hasPullup[o] {
			continue
		}
		riseD := b.staticRiseDelay(o)
		np := 0
		if s.HasPulldown {
			var truncated bool
			np, truncated = b.gndPaths(o)
			if truncated {
				b.truncated++
			}
		}
		start := int32(0)
		for pi := 0; pi < np; pi++ {
			end := b.pathEnd[pi]
			path := b.pathDev[start:end]
			start = end
			dfall := b.pathFallDelay(o, path)
			var pathMask uint8
			for _, di := range path {
				pathMask |= g.gmask[di]
			}
			for _, di := range path {
				gt := g.dgate[di]
				if g.isSupply(gt) {
					continue
				}
				b.addEdge(Edge{
					From:     gt,
					To:       o,
					DRise:    riseD,
					DFall:    dfall,
					MaskFall: pathMask,
					Invert:   true,
					Via:      g.id[di],
				})
			}
		}
		// Gated enhancement pullups (precharge devices and the like):
		// a non-inverting rise-only arc from the gating signal.
		for k := g.termStart[o]; k < g.termStart[o+1]; k++ {
			di := g.termDev[k]
			if g.role[di] != netlist.RolePullup || g.kind[di] != netlist.Enh {
				continue
			}
			gt := g.dgate[di]
			if g.isSupply(gt) {
				continue
			}
			if g.off[di] || g.forcedState[gt] != 0 {
				continue // handled by staticRiseDelay when forced high
			}
			b.addEdge(Edge{
				From:     gt,
				To:       o,
				DRise:    g.rEff[di] * b.downstreamCap(o, di),
				DFall:    Inf,
				MaskRise: g.gmask[di],
				GateArc:  true,
				Via:      g.id[di],
			})
		}
	}
}

// staticRiseDelay computes the rise delay of node o through its always-on
// pullups (depletion loads, or enhancement devices gated by VDD). Inf if o
// has no static pullup — dynamic nodes rise only through gated devices.
func (b *builder) staticRiseDelay(o int32) float64 {
	g := b.g
	d := Inf
	for k := g.termStart[o]; k < g.termStart[o+1]; k++ {
		di := g.termDev[k]
		if g.role[di] != netlist.RolePullup {
			continue
		}
		gt := g.dgate[di]
		alwaysOn := g.kind[di] == netlist.Dep || gt == g.vdd ||
			g.forcedState[gt] == 1
		if !alwaysOn {
			continue
		}
		if del := g.rEff[di] * b.downstreamCap(o, di); del < d {
			d = del
		}
	}
	return d
}

// gndPaths enumerates simple conducting paths from node o to GND through
// enhancement devices, respecting flow direction (steps move away from o).
// Paths are device-index sequences written into the builder's shared flat
// buffers: path i is b.pathDev[b.pathEnd[i-1]:b.pathEnd[i]] (offset 0 for
// i == 0), valid until the next gndPaths call. It records at most MaxPaths
// paths; if the bound is hit it keeps the enumerated prefix plus reports
// truncation (the caller then still has the worst of the enumerated paths
// — in practice stages are small and enumeration is exhaustive).
func (b *builder) gndPaths(o int32) (npaths int, truncated bool) {
	g := b.g
	b.cur = b.cur[:0]
	b.pathDev = b.pathDev[:0]
	b.pathEnd = b.pathEnd[:0]
	b.steps = 0
	b.onPath[o] = true
	var dfs func(n int32, depth int) bool
	dfs = func(n int32, depth int) bool {
		if depth > b.opt.MaxDepth {
			return true
		}
		ts, te := g.termStart[n], g.termStart[n+1]
		if b.steps += int(te - ts); b.steps > b.opt.MaxSteps {
			return false
		}
		for k := ts; k < te; k++ {
			di := g.termDev[k]
			if g.kind[di] != netlist.Enh || g.off[di] {
				continue
			}
			if g.role[di] == netlist.RolePullup {
				continue
			}
			other := g.other(di, n)
			if other == g.gnd {
				b.pathDev = append(b.pathDev, b.cur...)
				b.pathDev = append(b.pathDev, di)
				b.pathEnd = append(b.pathEnd, int32(len(b.pathDev)))
				if len(b.pathEnd) >= b.opt.MaxPaths {
					return false
				}
				continue
			}
			if g.isSupply(other) || b.onPath[other] {
				continue
			}
			// Never continue *through* a node that has its own pullup
			// (a restored gate output or a precharged node): discharge
			// paths re-entering another driver's network are false
			// paths — that driver's own fall plus pass propagation
			// models them. Stack intermediates have no pullup and pass
			// freely.
			if g.hasPullup[other] {
				continue
			}
			// Orientation prunes walking upstream into another driver's
			// pass network (whose discharge is modeled as that driver
			// falling and propagating through the pass arc instead). A
			// device oriented strictly toward n means other is upstream.
			if g.role[di] == netlist.RolePass && g.flow[di] != netlist.FlowBoth && g.conductsToward(di, n) {
				continue
			}
			b.cur = append(b.cur, di)
			b.onPath[other] = true
			ok := dfs(other, depth+1)
			b.onPath[other] = false
			b.cur = b.cur[:len(b.cur)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	complete := dfs(o, 0)
	b.onPath[o] = false
	return len(b.pathEnd), !complete
}

// pathFallDelay computes the Elmore discharge delay of node o through the
// given path (device indices ordered from o toward GND): Σ over path nodes
// of that node's capacitance times the total resistance between it and
// GND. Node o itself carries its full downstream load.
func (b *builder) pathFallDelay(o int32, path []int32) float64 {
	g := b.g
	// Total path resistance first.
	total := 0.0
	for _, di := range path {
		total += g.rEff[di]
	}
	via := int32(-1)
	if len(path) > 0 {
		// Never traverse the first path device (discharge current leaves
		// o through it; the load hanging the other way off o still must
		// discharge through the path).
		via = path[0]
	}
	d := total * b.downstreamCap(o, via)
	// Intermediate nodes: walk from o; after traversing device i the
	// remaining resistance to GND shrinks.
	n := o
	remaining := total
	last := len(path) - 1
	if last < 0 {
		last = 0
	}
	for _, di := range path[:last] {
		remaining -= g.rEff[di]
		n = g.other(di, n)
		if g.isSupply(n) {
			break
		}
		d += remaining * g.caps[n]
	}
	return d
}
