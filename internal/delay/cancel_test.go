package delay

import (
	"context"
	"errors"
	"testing"

	"nmostv/internal/faultpoint"
	"nmostv/internal/flow"
	"nmostv/internal/gen"
	"nmostv/internal/stage"
	"nmostv/internal/tech"
)

func chainFixture(t *testing.T, n int) (*gen.B, tech.Params) {
	t.Helper()
	p := tech.Default()
	b := gen.New("t", p)
	b.Output(b.InvChain(b.Input("in"), n))
	return b, p
}

// TestBuildCtxPreCanceled: a canceled context aborts the build before
// any shard work, on both the serial and parallel paths.
func TestBuildCtxPreCanceled(t *testing.T) {
	b, p := chainFixture(t, 16)
	nl := b.Finish()
	st := stage.Extract(nl)
	flow.Analyze(nl)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		m, err := BuildCtx(ctx, nl, st, p, Options{Workers: w})
		if !errors.Is(err, context.Canceled) || m != nil {
			t.Fatalf("workers=%d: BuildCtx = (%v, %v), want (nil, Canceled)", w, m, err)
		}
	}
}

// TestBuildWithCacheAbortKeepsEntries: an aborted cached build must NOT
// refresh the cache — the entries still describe the last completed
// build, so the session's rolled-back state keeps its warm shards.
func TestBuildWithCacheAbortKeepsEntries(t *testing.T) {
	defer faultpoint.Reset()
	b, p := chainFixture(t, 16)
	nl := b.Finish()
	st := stage.Extract(nl)
	flow.Analyze(nl)
	c := NewCache()
	if _, _, err := BuildWithCache(context.Background(), nl, st, p, Options{Workers: 1}, c); err != nil {
		t.Fatal(err)
	}
	warm := len(c.entries)
	if warm == 0 {
		t.Fatal("cache not primed by successful build")
	}

	// Invalidate every fingerprint (resize all devices), then abort the
	// rebuild through the shard fault point.
	for _, tr := range nl.Trans {
		tr.W *= 2
	}
	faultpoint.Arm("delay.build.shard", faultpoint.Action{Err: faultpoint.ErrInjected})
	m, _, err := BuildWithCache(context.Background(), nl, st, p, Options{Workers: 1}, c)
	if !errors.Is(err, faultpoint.ErrInjected) || m != nil {
		t.Fatalf("aborted BuildWithCache = (%v, %v), want injected fault", m, err)
	}
	if len(c.entries) != warm {
		t.Fatalf("abort refreshed the cache: %d entries, want %d", len(c.entries), warm)
	}
	faultpoint.Reset()

	// Undo the resize: the untouched cache must hit again wholesale.
	for _, tr := range nl.Trans {
		tr.W /= 2
	}
	_, stats, err := BuildWithCache(context.Background(), nl, st, p, Options{Workers: 1}, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Rebuilt) != 0 {
		t.Fatalf("%d stages rebuilt after rollback, want 0 (cache should still be warm)", len(stats.Rebuilt))
	}
}
