package delay

import (
	"context"

	"nmostv/internal/netlist"
	"nmostv/internal/stage"
	"nmostv/internal/tech"
)

// Cache retains per-stage edge shards across netlist edits, keyed by the
// stage content fingerprint (stage.Fingerprint). A shard stays valid as
// long as nothing the edge builder reads from its stage changed: device
// sizes and flow orientation, channel-node loading, node annotations, and
// the case-analysis constants. The incremental session recomputes
// fingerprints after every delta; stages whose fingerprint misses the
// cache — and only those — are rebuilt.
//
// A Cache is single-owner state (one per incremental session); it is not
// safe for concurrent use.
type Cache struct {
	entries map[uint64]cacheEntry
	// scratch is the reusable graph snapshot backing store: a session's
	// repeated rebuilds refill the same flat arrays instead of
	// reallocating O(nodes + devices) state per edit.
	scratch *graph
}

type cacheEntry struct {
	// ids guards against fingerprint collisions: a hit must also match
	// the stage's ordered device-ID list exactly.
	ids []int64
	sh  shard
}

// NewCache returns an empty shard cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[uint64]cacheEntry)}
}

// Checkpoint captures the cache's current contents for a later Rollback.
// It is O(1): BuildWithCache refreshes the cache by replacing the entry
// map wholesale (entries themselves are immutable), so the old map stays
// valid behind the captured reference.
type Checkpoint struct {
	entries map[uint64]cacheEntry
}

// Checkpoint returns a handle on the current contents.
func (c *Cache) Checkpoint() Checkpoint { return Checkpoint{entries: c.entries} }

// Rollback restores the contents captured by a Checkpoint. A session
// that unwinds an aborted delta batch must also unwind the cache: a
// completed BuildWithCache for the aborted state would otherwise leave
// entries keyed by the mutated fingerprints, and re-applying the same
// batch would hit wholesale — reporting zero rebuilt stages and starving
// the incremental analyzer's seed set.
func (c *Cache) Rollback(cp Checkpoint) { c.entries = cp.entries }

func idsMatch(ids []int64, s *stage.Stage) bool {
	if len(ids) != len(s.Trans) {
		return false
	}
	for i, t := range s.Trans {
		if ids[i] != t.ID {
			return false
		}
	}
	return true
}

// BuildStats reports how much of a cached build was recomputed.
type BuildStats struct {
	// Stages is the total stage count of the partition.
	Stages int
	// Rebuilt lists the stages whose shards were recomputed (cache
	// misses), in stage-index order.
	Rebuilt []*stage.Stage
}

// BuildWithCache is Build with per-stage shard reuse: stages whose
// fingerprint (and device-ID list) match a cache entry keep their cached
// edges; the rest are rebuilt on the option's worker pool. The merged,
// sorted model is bit-identical to a from-scratch Build on the same
// netlist state — the fingerprint covers every input of the per-stage
// computation, and merge order and the global sort are unchanged. The
// cache is refreshed wholesale to the current fingerprints, so entries for
// stages that no longer exist are evicted.
//
// The context is polled once per rebuilt shard. An aborted build returns
// the error with no model and — critically — without refreshing the
// cache: the entries still describe the last completed build, so a
// rolled-back session keeps its warm shards.
func BuildWithCache(ctx context.Context, nl *netlist.Netlist, st *stage.Result, p tech.Params, opt Options, c *Cache) (*Model, BuildStats, error) {
	opt = opt.withDefaults()
	defer opt.Obs.Span("delay-build-cached").End()
	m := &Model{Caps: ComputeCaps(nl, p)}
	m.snapshotNodes(nl)
	forced := forcedMap(nl, opt)
	c.scratch = newGraph(nl, p, m.Caps, forced, c.scratch)

	stages := st.Stages
	shards := make([]shard, len(stages))
	fps := make([]uint64, len(stages))
	var todo []int
	sp := opt.Obs.Span("fingerprint+probe")
	for i, s := range stages {
		fps[i] = s.Fingerprint(m.Caps, forced)
		if e, ok := c.entries[fps[i]]; ok && idsMatch(e.ids, s) {
			shards[i] = e.sh
			continue
		}
		todo = append(todo, i)
	}
	sp.End()
	sp = opt.Obs.Span("shard-build")
	err := buildShards(ctx, c.scratch, st, opt, shards, todo)
	sp.End()
	if err != nil {
		return nil, BuildStats{}, err
	}

	stats := BuildStats{Stages: len(stages)}
	for _, i := range todo {
		stats.Rebuilt = append(stats.Rebuilt, stages[i])
	}
	opt.Obs.Counter("delay_cache_hits_total",
		"stage shards reused from the content-addressed cache").Add(int64(len(stages) - len(todo)))
	opt.Obs.Counter("delay_cache_misses_total",
		"stage shards rebuilt on cache miss").Add(int64(len(todo)))
	fresh := make(map[uint64]cacheEntry, len(stages))
	for i, s := range stages {
		fresh[fps[i]] = cacheEntry{ids: s.DeviceIDs(), sh: shards[i]}
	}
	c.entries = fresh

	sp = opt.Obs.Span("merge+sort")
	mergeShards(m, shards)
	sp.End()
	return m, stats, nil
}

// Fingerprints computes the per-stage content fingerprints for the
// current netlist state without building any edges — exactly the keys a
// BuildWithCache on the same state would probe. Session persistence uses
// it: the snapshot stores these as a compact proof that a restore
// re-derived the same partition and shard-cache keyspace.
func Fingerprints(nl *netlist.Netlist, st *stage.Result, p tech.Params, opt Options) []uint64 {
	opt = opt.withDefaults()
	caps := ComputeCaps(nl, p)
	forced := forcedMap(nl, opt)
	fps := make([]uint64, len(st.Stages))
	for i, s := range st.Stages {
		fps[i] = s.Fingerprint(caps, forced)
	}
	return fps
}
