package delay

import (
	"nmostv/internal/netlist"
	"nmostv/internal/tech"
)

// graph is a flat, index-based snapshot of a finalized netlist: everything
// the edge builder reads, laid out as structure-of-arrays slices indexed by
// Node.Index / Transistor.Index. Shard rebuilds walk these packed arrays
// (and the CSR channel-terminal adjacency) instead of chasing Node.Terms /
// Node.Gates pointer slices, so the inner loops touch dense, cache-resident
// memory. The snapshot is read-only once built and is shared by every
// builder worker. Edges reference devices by stable netlist ID (graph.id),
// never by pointer, which keeps the model's edge array pointer-free.
type graph struct {

	vdd, gnd int32

	// Per node, indexed by Node.Index.
	flags       []netlist.Flag
	phase       []int32
	caps        []float64 // aliases Model.Caps
	forcedState []uint8   // 0 free, 1 held high, 2 held low (case analysis)
	hasPullup   []bool    // node has an attached RolePullup device
	gateCnt     []int32   // number of devices gated by the node

	// CSR channel-terminal adjacency: the devices with a source/drain on
	// node i are termDev[termStart[i]:termStart[i+1]], in exactly the
	// order Finalize builds Node.Terms (device order; A then B when they
	// differ) so float accumulation order — and therefore every delay
	// bit — matches the pointer-based walk.
	termStart []int32
	termDev   []int32

	// Per device, indexed by Transistor.Index.
	kind  []netlist.Kind
	role  []netlist.Role
	flow  []netlist.FlowDir
	dgate []int32
	da    []int32
	db    []int32
	rEff  []float64 // DeviceR under the build's tech params
	gmask []uint8   // clockMask of the gate node
	off   []bool    // held non-conducting by case analysis
	id    []int64   // stable Transistor.ID, stamped into Edge.Via
}

// growSlice returns s resized to n, reallocating only when capacity is
// short. Contents are unspecified; callers overwrite every element.
func growSlice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// newGraph snapshots the netlist into reuse (which may be nil), returning
// the filled graph. caps is the per-node loading (Model.Caps); forced the
// resolved case-analysis constants.
func newGraph(nl *netlist.Netlist, p tech.Params, caps []float64,
	forced map[*netlist.Node]bool, reuse *graph) *graph {
	g := reuse
	if g == nil {
		g = &graph{}
	}
	nn, nt := len(nl.Nodes), len(nl.Trans)
	g.vdd, g.gnd = int32(nl.VDD.Index), int32(nl.GND.Index)
	g.caps = caps

	g.flags = growSlice(g.flags, nn)
	g.phase = growSlice(g.phase, nn)
	g.forcedState = growSlice(g.forcedState, nn)
	g.hasPullup = growSlice(g.hasPullup, nn)
	g.gateCnt = growSlice(g.gateCnt, nn)
	g.termStart = growSlice(g.termStart, nn+1)
	for i, n := range nl.Nodes {
		g.flags[i] = n.Flags
		g.phase[i] = int32(n.Phase)
		g.forcedState[i] = 0
		g.hasPullup[i] = false
		g.gateCnt[i] = 0
		g.termStart[i+1] = 0
	}
	g.termStart[0] = 0
	for n, v := range forced {
		if v {
			g.forcedState[n.Index] = 1
		} else {
			g.forcedState[n.Index] = 2
		}
	}

	g.kind = growSlice(g.kind, nt)
	g.role = growSlice(g.role, nt)
	g.flow = growSlice(g.flow, nt)
	g.dgate = growSlice(g.dgate, nt)
	g.da = growSlice(g.da, nt)
	g.db = growSlice(g.db, nt)
	g.rEff = growSlice(g.rEff, nt)
	g.gmask = growSlice(g.gmask, nt)
	g.off = growSlice(g.off, nt)
	g.id = growSlice(g.id, nt)
	for i, t := range nl.Trans {
		a, b, gt := int32(t.A.Index), int32(t.B.Index), int32(t.Gate.Index)
		g.kind[i] = t.Kind
		g.role[i] = t.Role
		g.flow[i] = t.Flow
		g.dgate[i], g.da[i], g.db[i] = gt, a, b
		g.rEff[i] = DeviceR(t, p)
		g.gmask[i] = clockMask(t.Gate)
		g.id[i] = t.ID
		g.off[i] = t.Kind == netlist.Enh && g.forcedState[gt] == 2
		if t.Role == netlist.RolePullup {
			g.hasPullup[a] = true
			g.hasPullup[b] = true
		}
		g.gateCnt[gt]++
		g.termStart[a+1]++
		if b != a {
			g.termStart[b+1]++
		}
	}
	for i := 0; i < nn; i++ {
		g.termStart[i+1] += g.termStart[i]
	}
	g.termDev = growSlice(g.termDev, int(g.termStart[nn]))
	// Fill using the start offsets as moving cursors, then shift them back.
	for i, t := range nl.Trans {
		a, b := int32(t.A.Index), int32(t.B.Index)
		g.termDev[g.termStart[a]] = int32(i)
		g.termStart[a]++
		if b != a {
			g.termDev[g.termStart[b]] = int32(i)
			g.termStart[b]++
		}
	}
	for i := nn; i > 0; i-- {
		g.termStart[i] = g.termStart[i-1]
	}
	g.termStart[0] = 0
	return g
}

// other returns the channel terminal of device di opposite node n, which
// must be one of the device's terminals.
func (g *graph) other(di, n int32) int32 {
	if n == g.da[di] {
		return g.db[di]
	}
	return g.da[di]
}

// conductsToward reports whether signal may propagate through device di's
// channel toward dst (a channel terminal of di) under the assigned flow.
func (g *graph) conductsToward(di, dst int32) bool {
	switch g.flow[di] {
	case netlist.FlowAB:
		return dst == g.db[di]
	case netlist.FlowBA:
		return dst == g.da[di]
	default:
		return true
	}
}

func (g *graph) isSupply(n int32) bool { return g.flags[n]&netlist.FlagSupply != 0 }
