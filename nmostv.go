// Package nmostv is a static timing analyzer for nMOS VLSI transistor
// netlists, reproducing the TV timing verifier of Jouppi (DAC 1983): it
// reads transistor-level circuits (Berkeley .sim dialect or constructed
// in-process), partitions them into channel-connected stages, infers
// signal-flow direction through pass transistors, builds RC timing arcs,
// and performs value-independent case analysis of one two-phase clock
// cycle — producing per-node settle times, latch/precharge/output checks
// with slacks, critical paths, and minimum-cycle-time searches.
//
// Typical use:
//
//	d, err := nmostv.LoadSimFile("chip.sim", nmostv.DefaultParams())
//	res, err := d.Analyze(nmostv.TwoPhase(100, 0.8), nmostv.AnalyzeOptions{})
//	fmt.Println(nmostv.FormatPath(res.CriticalPath()))
//
// The heavy lifting lives in the internal packages (netlist, stage, flow,
// rc, delay, clocks, core, sim, gen); this package is the stable facade
// that ties the pipeline together and re-exports the types a user needs.
package nmostv

import (
	"context"
	"io"
	"os"

	"nmostv/internal/charge"
	"nmostv/internal/clocks"
	"nmostv/internal/core"
	"nmostv/internal/delay"
	"nmostv/internal/erc"
	"nmostv/internal/flow"
	"nmostv/internal/netlist"
	"nmostv/internal/obs"
	"nmostv/internal/simfile"
	"nmostv/internal/slack"
	"nmostv/internal/stage"
	"nmostv/internal/tech"
)

// Re-exported types: the facade's vocabulary is the internal packages'.
type (
	// Netlist is a transistor-level circuit.
	Netlist = netlist.Netlist
	// Node is an electrical net.
	Node = netlist.Node
	// Transistor is one nMOS device.
	Transistor = netlist.Transistor
	// Params is the process description.
	Params = tech.Params
	// Schedule is a two-phase clock cycle.
	Schedule = clocks.Schedule
	// Result is a completed timing analysis.
	Result = core.Result
	// Check is one verification finding.
	Check = core.Check
	// Step is one hop of a reported path.
	Step = core.Step
	// AnalyzeOptions tunes the analysis.
	AnalyzeOptions = core.Options
	// FlowSummary reports the pass-transistor orientation statistics.
	FlowSummary = flow.Summary
	// Stats summarizes a netlist.
	Stats = netlist.Stats
	// Polarity is a transition direction (Rise or Fall).
	Polarity = core.Polarity
	// ERCFinding is one electrical-rule finding (ratio rule etc.).
	ERCFinding = erc.Finding
	// ChargeFinding is one charge-sharing exposure report.
	ChargeFinding = charge.Finding
	// Corner is a named PVT corner (uniform R/C derates).
	Corner = tech.Corner
	// Required holds per-node required times and slacks (backward pass).
	Required = core.Required
	// SlackEntry is one row of a slack-ordered critical ranking.
	SlackEntry = core.SlackEntry
	// CornerSweep is a completed multi-corner analysis.
	CornerSweep = slack.Sweep
	// CornerResult is one corner's analysis within a sweep.
	CornerResult = slack.CornerResult
)

// Transition polarities.
const (
	Rise = core.Rise
	Fall = core.Fall
)

// DefaultParams returns the canonical 4µm nMOS process.
func DefaultParams() Params { return tech.Default() }

// TwoPhase builds a symmetric two-phase schedule with the given period
// (ns) and per-phase active fraction.
func TwoPhase(period, activeFrac float64) Schedule {
	return clocks.TwoPhase(period, activeFrac)
}

// FormatPath renders a critical path listing.
func FormatPath(steps []Step) string { return core.FormatPath(steps) }

// ParseCorners parses a comma-separated corner spec — builtin names
// (slow, typ, fast) or name:rscale:cscale triples.
func ParseCorners(spec string) ([]Corner, error) { return tech.ParseCorners(spec) }

// Corners returns the builtin corner set: slow, typ, fast.
func Corners() []Corner { return tech.Corners() }

// Design is a prepared circuit: staged, flow-analyzed, with timing arcs
// built — everything Analyze needs, reusable across schedules.
type Design struct {
	// NL is the underlying netlist.
	NL *Netlist
	// Params is the process used for the RC models.
	Params Params
	// Stages is the channel-connected partition.
	Stages *stage.Result
	// Flow summarizes pass-transistor orientation.
	Flow FlowSummary
	// Model holds the timing arcs.
	Model *delay.Model
}

// PrepareOptions tunes Prepare.
type PrepareOptions struct {
	// DisableFlow skips signal-flow inference, timing every pass device
	// bidirectionally (the pessimistic ablation).
	DisableFlow bool
	// MaxPaths and MaxDepth bound GND-path enumeration (see
	// delay.Options); zero means defaults.
	MaxPaths, MaxDepth int
	// SetHigh and SetLow hold named nodes at constants — TV case
	// analysis for false-path elimination. Pass the same lists in
	// AnalyzeOptions so the analyzer treats them as static.
	SetHigh, SetLow []string
	// Workers bounds the goroutines used to build the delay model: 0
	// (the default) uses one per CPU, 1 forces a serial build. The model
	// is bit-identical at every worker count. Set AnalyzeOptions.Workers
	// likewise to control the propagation passes.
	Workers int
	// Obs receives phase spans (stage-partition, flow, delay-build) and
	// metrics; pass the same handle in AnalyzeOptions.Obs to cover the
	// propagation passes too. Nil disables instrumentation.
	Obs *obs.Obs
}

// Prepare runs the pre-analysis pipeline on a finalized netlist.
func Prepare(nl *Netlist, p Params, opt PrepareOptions) *Design {
	d := &Design{NL: nl, Params: p}
	sp := opt.Obs.Span("stage-partition")
	d.Stages = stage.Extract(nl)
	sp.End()
	sp = opt.Obs.Span("flow")
	if opt.DisableFlow {
		flow.Reset(nl)
	} else {
		d.Flow = flow.Analyze(nl)
	}
	sp.End()
	d.Model = delay.Build(nl, d.Stages, p, delay.Options{
		MaxPaths: opt.MaxPaths,
		MaxDepth: opt.MaxDepth,
		SetHigh:  opt.SetHigh,
		SetLow:   opt.SetLow,
		Workers:  opt.Workers,
		Obs:      opt.Obs,
	})
	return d
}

// AnalyzeCase is the one-call form of TV case analysis: it re-prepares the
// design with the given constants and analyzes under them.
func AnalyzeCase(nl *Netlist, p Params, sched Schedule, setHigh, setLow []string) (*Result, error) {
	d := Prepare(nl, p, PrepareOptions{SetHigh: setHigh, SetLow: setLow})
	return d.Analyze(sched, AnalyzeOptions{SetHigh: setHigh, SetLow: setLow})
}

// Analyze runs case analysis against a clock schedule.
func (d *Design) Analyze(sched Schedule, opt AnalyzeOptions) (*Result, error) {
	return core.Analyze(context.Background(), d.NL, d.Model, sched, opt)
}

// AnalyzeContext is Analyze with cancellation: the wavefront walk polls
// the context and an aborted analysis returns its error with no result.
func (d *Design) AnalyzeContext(ctx context.Context, sched Schedule, opt AnalyzeOptions) (*Result, error) {
	return core.Analyze(ctx, d.NL, d.Model, sched, opt)
}

// AnalyzeCorners runs forward and backward timing passes at every corner
// concurrently over the design's shared propagation plan and merges the
// per-corner slacks into a worst-slack-per-node view. An empty corner
// list analyzes just the typical corner.
func (d *Design) AnalyzeCorners(sched Schedule, corners []Corner, opt AnalyzeOptions) (*CornerSweep, error) {
	return slack.Analyze(context.Background(), d.NL, d.Model, corners,
		slack.Options{Sched: sched, Core: opt, Obs: opt.Obs})
}

// MinPeriod searches for the smallest passing clock period in [lo, hi] ns
// (tolerance tol), preserving base's phase proportions.
func (d *Design) MinPeriod(base Schedule, opt AnalyzeOptions, lo, hi, tol float64) (float64, *Result, error) {
	return core.MinPeriod(context.Background(), d.NL, d.Model, base, opt, lo, hi, tol)
}

// LoadSim parses a .sim stream and prepares it with default options.
func LoadSim(r io.Reader, name string, p Params) (*Design, error) {
	nl, err := simfile.Read(r, name)
	if err != nil {
		return nil, err
	}
	return Prepare(nl, p, PrepareOptions{}), nil
}

// LoadSimFile parses a .sim file and prepares it with default options.
func LoadSimFile(path string, p Params) (*Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadSim(f, path, p)
}

// WriteSim writes a netlist in the .sim dialect.
func WriteSim(w io.Writer, nl *Netlist) error { return simfile.Write(w, nl) }

// CheckERC runs the electrical rule checks (pullup/pulldown ratio rule,
// stuck-high outputs, floating gates) over the design's netlist.
func (d *Design) CheckERC() []ERCFinding {
	return erc.Check(d.NL, d.Params, erc.Options{})
}

// CheckCharge runs the charge-sharing analysis over every dynamic node.
func (d *Design) CheckCharge() []ChargeFinding {
	return charge.Analyze(d.NL, d.Params, charge.Options{})
}

// ChargeHazards filters the failing charge findings.
func ChargeHazards(findings []ChargeFinding) []ChargeFinding {
	return charge.Hazards(findings)
}
