module nmostv

go 1.22
