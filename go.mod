module nmostv

go 1.23
