// Command perfgate is the CI performance smoke gate. It measures
// full-pipeline throughput (stage extraction, flow inference, delay
// build, case analysis) on the tiled benchmark chip at the size recorded
// in the committed baseline — 100k transistors, small enough for a CI
// runner, large enough to expose an allocation or GC regression in the
// structure-of-arrays core — and exits nonzero if transistors/sec falls
// more than -tol below the baseline figure.
//
// The baseline (testdata/perf_baseline.json) is committed deliberately
// low relative to the reference-host measurement so that runner-to-
// runner hardware variance does not trip the gate; the gate exists to
// catch order-of-magnitude regressions (a pointer chase or per-edge
// allocation creeping back into the walk), not single-digit noise.
//
// Usage:
//
// When the baseline carries a corner_target_transistors entry, the gate
// also measures the 3-corner MCMM sweep at that size (bench T9) and
// fails unless the sweep's per-corner throughput clears corner_ratio_floor
// times the single-corner rate, its live heap stays under the T9 memory
// ceiling, and its outputs match independent per-corner runs bit for bit.
//
// When the baseline carries a recorder_target_transistors entry, the gate
// also measures flight-recorder overhead on the incremental apply path at
// that size (bench T10) and fails if the recorder-on median exceeds
// recorder_overhead_ceiling times the recorder-off median — the recorder
// is always on in production, so a regression here taxes every request.
//
// Usage:
//
//	perfgate                      # gate against testdata/perf_baseline.json
//	perfgate -tol 0.30            # allowed fractional regression
//	perfgate -out BENCH_T5.json   # also persist the measurement as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nmostv/internal/bench"
)

type baseline struct {
	Target      int     `json:"target_transistors"`
	Workers     int     `json:"workers"`
	TransPerSec float64 `json:"transistors_per_sec"`
	// CornerTarget, when positive, adds the multi-corner gate: a 3-corner
	// sweep at this size must keep per-corner throughput at or above
	// CornerRatioFloor × the single-corner rate (0 = the T9 default).
	CornerTarget     int     `json:"corner_target_transistors,omitempty"`
	CornerRatioFloor float64 `json:"corner_ratio_floor,omitempty"`
	// RecorderTarget, when positive, adds the flight-recorder gate: the
	// incremental apply path with a recorder request span attached must
	// stay within RecorderOverheadCeiling × the recorder-off median at
	// this size (0 = the T10 default, 1.03).
	RecorderTarget          int     `json:"recorder_target_transistors,omitempty"`
	RecorderOverheadCeiling float64 `json:"recorder_overhead_ceiling,omitempty"`
	// JournalTarget, when positive, adds the durability gate: the
	// journaled apply (append, no fsync) at this size must stay within
	// JournalOverheadCeiling × the bare apply median (0 = the T11
	// default, 1.25).
	JournalTarget          int     `json:"journal_target_transistors,omitempty"`
	JournalOverheadCeiling float64 `json:"journal_overhead_ceiling,omitempty"`
	Note                   string  `json:"note,omitempty"`
}

type gateResult struct {
	Experiment string         `json:"experiment"`
	Baseline   baseline       `json:"baseline"`
	Floor      float64        `json:"floor_trans_per_sec"`
	Pass       bool           `json:"pass"`
	Sample     bench.T8Sample `json:"sample"`
	// CornerFloor and CornerSample are present when the baseline enables
	// the multi-corner gate.
	CornerFloor  float64         `json:"corner_ratio_floor,omitempty"`
	CornerSample *bench.T9Sample `json:"corner_sample,omitempty"`
	// RecorderCeiling and RecorderSample are present when the baseline
	// enables the flight-recorder gate.
	RecorderCeiling float64          `json:"recorder_overhead_ceiling,omitempty"`
	RecorderSample  *bench.T10Sample `json:"recorder_sample,omitempty"`
	// JournalCeiling and JournalSample are present when the baseline
	// enables the durability gate.
	JournalCeiling float64          `json:"journal_overhead_ceiling,omitempty"`
	JournalSample  *bench.T11Sample `json:"journal_sample,omitempty"`
}

func main() {
	basePath := flag.String("baseline", "testdata/perf_baseline.json", "committed throughput baseline")
	tol := flag.Float64("tol", 0.30, "allowed fractional regression below the baseline")
	out := flag.String("out", "", "optional path to persist the measurement as JSON")
	flag.Parse()

	blob, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
		os.Exit(2)
	}
	var b baseline
	if err := json.Unmarshal(blob, &b); err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: parse %s: %v\n", *basePath, err)
		os.Exit(2)
	}
	if b.Target <= 0 || b.TransPerSec <= 0 {
		fmt.Fprintf(os.Stderr, "perfgate: %s: target and transistors_per_sec must be positive\n", *basePath)
		os.Exit(2)
	}

	sample := bench.MeasureTiled(b.Target, b.Workers)
	floor := b.TransPerSec * (1 - *tol)
	pass := sample.TransPerSec >= floor

	fmt.Printf("perfgate: %d transistors, %d workers: %.0f trans/s (median of %d runs)\n",
		sample.Transistors, sample.Workers, sample.TransPerSec, bench.T8Repeats)
	fmt.Printf("perfgate: baseline %.0f trans/s, tolerance %.0f%% -> floor %.0f trans/s\n",
		b.TransPerSec, *tol*100, floor)

	var cornerSample *bench.T9Sample
	cornerFloor := b.CornerRatioFloor
	cornerPass := true
	if b.CornerTarget > 0 {
		if cornerFloor <= 0 {
			cornerFloor = bench.T9ThroughputFloor
		}
		cs := bench.MeasureCornerSweep(b.CornerTarget, b.Workers)
		cornerSample = &cs
		cornerPass = cs.BitIdentical && cs.PerCornerRatio >= cornerFloor &&
			cs.MemRatio < bench.T9MemCeiling
		fmt.Printf("perfgate: %d-corner sweep at %d transistors: %.2f× per-corner throughput (floor %.2f), %.2f× memory (ceiling %.2g), bit-identical %v\n",
			cs.Corners, cs.Transistors, cs.PerCornerRatio, cornerFloor, cs.MemRatio, bench.T9MemCeiling, cs.BitIdentical)
	}

	var recorderSample *bench.T10Sample
	recorderCeiling := b.RecorderOverheadCeiling
	recorderPass := true
	if b.RecorderTarget > 0 {
		if recorderCeiling <= 0 {
			recorderCeiling = bench.T10OverheadCeiling
		}
		rs := bench.MeasureRecorderOverhead(b.RecorderTarget, b.Workers)
		recorderSample = &rs
		recorderPass = rs.Overhead <= recorderCeiling
		fmt.Printf("perfgate: flight recorder at %d transistors: %.2f%% apply overhead (ceiling %.0f%%), %d spans/apply, medians of %d pairs\n",
			rs.Transistors, 100*(rs.Overhead-1), 100*(recorderCeiling-1), rs.SpansPerApply, rs.Pairs)
	}

	var journalSample *bench.T11Sample
	journalCeiling := b.JournalOverheadCeiling
	journalPass := true
	if b.JournalTarget > 0 {
		if journalCeiling <= 0 {
			journalCeiling = bench.T11OverheadCeiling
		}
		js := bench.MeasureDurability(b.JournalTarget, b.Workers)
		journalSample = &js
		journalPass = js.Overhead <= journalCeiling
		fmt.Printf("perfgate: journal at %d transistors: %.2f%% apply overhead (ceiling %.0f%%), snapshot %.1f MiB save %.1fms restore %.1fms\n",
			js.Transistors, 100*(js.Overhead-1), 100*(journalCeiling-1),
			float64(js.SnapshotBytes)/(1<<20), float64(js.SaveNS)/1e6, float64(js.RestoreNS)/1e6)
	}

	if *out != "" {
		res := gateResult{Experiment: "perf-smoke", Baseline: b, Floor: floor,
			Pass: pass && cornerPass && recorderPass && journalPass, Sample: sample,
			CornerFloor: cornerFloor, CornerSample: cornerSample,
			RecorderCeiling: recorderCeiling, RecorderSample: recorderSample,
			JournalCeiling: journalCeiling, JournalSample: journalSample}
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfgate: marshal: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("perfgate: wrote %s\n", *out)
	}

	if !pass {
		fmt.Fprintf(os.Stderr, "perfgate: FAIL — throughput regressed more than %.0f%% below baseline\n", *tol*100)
		os.Exit(1)
	}
	if !cornerPass {
		fmt.Fprintf(os.Stderr, "perfgate: FAIL — multi-corner sweep missed its throughput, memory, or bit-identity budget\n")
		os.Exit(1)
	}
	if !recorderPass {
		fmt.Fprintf(os.Stderr, "perfgate: FAIL — flight recorder overhead exceeded its ceiling on the apply path\n")
		os.Exit(1)
	}
	if !journalPass {
		fmt.Fprintf(os.Stderr, "perfgate: FAIL — journal append overhead exceeded its ceiling on the apply path\n")
		os.Exit(1)
	}
	fmt.Println("perfgate: PASS")
}
