// Command perfgate is the CI performance smoke gate. It measures
// full-pipeline throughput (stage extraction, flow inference, delay
// build, case analysis) on the tiled benchmark chip at the size recorded
// in the committed baseline — 100k transistors, small enough for a CI
// runner, large enough to expose an allocation or GC regression in the
// structure-of-arrays core — and exits nonzero if transistors/sec falls
// more than -tol below the baseline figure.
//
// The baseline (testdata/perf_baseline.json) is committed deliberately
// low relative to the reference-host measurement so that runner-to-
// runner hardware variance does not trip the gate; the gate exists to
// catch order-of-magnitude regressions (a pointer chase or per-edge
// allocation creeping back into the walk), not single-digit noise.
//
// Usage:
//
//	perfgate                      # gate against testdata/perf_baseline.json
//	perfgate -tol 0.30            # allowed fractional regression
//	perfgate -out BENCH_T5.json   # also persist the measurement as JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"nmostv/internal/bench"
)

type baseline struct {
	Target      int     `json:"target_transistors"`
	Workers     int     `json:"workers"`
	TransPerSec float64 `json:"transistors_per_sec"`
	Note        string  `json:"note,omitempty"`
}

type gateResult struct {
	Experiment string         `json:"experiment"`
	Baseline   baseline       `json:"baseline"`
	Floor      float64        `json:"floor_trans_per_sec"`
	Pass       bool           `json:"pass"`
	Sample     bench.T8Sample `json:"sample"`
}

func main() {
	basePath := flag.String("baseline", "testdata/perf_baseline.json", "committed throughput baseline")
	tol := flag.Float64("tol", 0.30, "allowed fractional regression below the baseline")
	out := flag.String("out", "", "optional path to persist the measurement as JSON")
	flag.Parse()

	blob, err := os.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
		os.Exit(2)
	}
	var b baseline
	if err := json.Unmarshal(blob, &b); err != nil {
		fmt.Fprintf(os.Stderr, "perfgate: parse %s: %v\n", *basePath, err)
		os.Exit(2)
	}
	if b.Target <= 0 || b.TransPerSec <= 0 {
		fmt.Fprintf(os.Stderr, "perfgate: %s: target and transistors_per_sec must be positive\n", *basePath)
		os.Exit(2)
	}

	sample := bench.MeasureTiled(b.Target, b.Workers)
	floor := b.TransPerSec * (1 - *tol)
	pass := sample.TransPerSec >= floor

	fmt.Printf("perfgate: %d transistors, %d workers: %.0f trans/s (median of %d runs)\n",
		sample.Transistors, sample.Workers, sample.TransPerSec, bench.T8Repeats)
	fmt.Printf("perfgate: baseline %.0f trans/s, tolerance %.0f%% -> floor %.0f trans/s\n",
		b.TransPerSec, *tol*100, floor)

	if *out != "" {
		res := gateResult{Experiment: "perf-smoke", Baseline: b, Floor: floor, Pass: pass, Sample: sample}
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "perfgate: marshal: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "perfgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("perfgate: wrote %s\n", *out)
	}

	if !pass {
		fmt.Fprintf(os.Stderr, "perfgate: FAIL — throughput regressed more than %.0f%% below baseline\n", *tol*100)
		os.Exit(1)
	}
	fmt.Println("perfgate: PASS")
}
