package main

import (
	"strings"
	"testing"

	"nmostv"
	"nmostv/internal/gen"
	"nmostv/internal/sim"
)

func testSim(t *testing.T) (*sim.Sim, *nmostv.Netlist) {
	t.Helper()
	p := nmostv.DefaultParams()
	b := gen.New("t", p)
	b.Output(b.Inverter(b.Input("in")))
	nl := b.Finish()
	return sim.New(nl, nil, p), nl
}

func TestRunScriptDrivesSim(t *testing.T) {
	s, nl := testSim(t)
	script := `
# drive the inverter both ways
watch inv_1
set in 0
run
print inv_1
set in 1
run
print in inv_1
echo done
`
	if err := runScript(s, nl, strings.NewReader(script)); err != nil {
		t.Fatalf("runScript: %v", err)
	}
	if got := s.Value(nl.Lookup("inv_1")); got != sim.V0 {
		t.Errorf("after script, inv_1 = %v, want 0", got)
	}
}

func TestRunScriptRelease(t *testing.T) {
	s, nl := testSim(t)
	script := `
set in 1
set inv_1 1
run
release inv_1
run
`
	if err := runScript(s, nl, strings.NewReader(script)); err != nil {
		t.Fatal(err)
	}
	if got := s.Value(nl.Lookup("inv_1")); got != sim.V0 {
		t.Errorf("released node must return to circuit value, got %v", got)
	}
}

func TestRunScriptXValue(t *testing.T) {
	s, nl := testSim(t)
	if err := runScript(s, nl, strings.NewReader("set in x\nrun\n")); err != nil {
		t.Fatal(err)
	}
	if got := s.Value(nl.Lookup("inv_1")); got != sim.VX {
		t.Errorf("inv(X) = %v, want X", got)
	}
}

func TestRunScriptErrors(t *testing.T) {
	cases := []struct{ name, script, wantSub string }{
		{"unknown node", "set ghost 1\n", "unknown node"},
		{"bad set arity", "set in\n", "set <node>"},
		{"bad value", "set in 2\n", "bad value"},
		{"unknown command", "frobnicate\n", "unknown command"},
		{"watch unknown", "watch ghost\n", "unknown node"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s, nl := testSim(t)
			err := runScript(s, nl, strings.NewReader(c.script))
			if err == nil || !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("err = %v, want containing %q", err, c.wantSub)
			}
		})
	}
}
