// Command nmossim drives the event-driven switch-level simulator over a
// .sim netlist with a simple stimulus script, printing traced transitions
// and final values — the SPICE-substitute referee usable standalone.
//
// Usage:
//
//	nmossim -stim script.stim design.sim
//
// Stimulus script, one command per line ('#' comments):
//
//	watch <node>         trace a node's transitions
//	set <node> <0|1|x>   drive a node
//	release <node>       return a node to circuit control
//	run                  run to quiescence
//	print <node>...      print current values
//	echo <text>          copy text to output
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nmostv"
	"nmostv/internal/netlist"
	"nmostv/internal/sim"
	"nmostv/internal/simfile"
)

func main() {
	stim := flag.String("stim", "", "stimulus script (default stdin)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: nmossim [-stim script] design.sim")
		os.Exit(2)
	}

	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	nl, err := simfile.Read(f, flag.Arg(0))
	f.Close()
	if err != nil {
		fatal(err)
	}

	var in io.Reader = os.Stdin
	if *stim != "" {
		sf, err := os.Open(*stim)
		if err != nil {
			fatal(err)
		}
		defer sf.Close()
		in = sf
	}

	s := sim.New(nl, nil, nmostv.DefaultParams())
	if err := runScript(s, nl, in); err != nil {
		fatal(err)
	}
}

func runScript(s *sim.Sim, nl *netlist.Netlist, in io.Reader) error {
	sc := bufio.NewScanner(in)
	lineNo := 0
	lookup := func(name string) (*netlist.Node, error) {
		n := nl.Lookup(name)
		if n == nil {
			return nil, fmt.Errorf("line %d: unknown node %q", lineNo, name)
		}
		return n, nil
	}
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		switch f[0] {
		case "watch":
			for _, name := range f[1:] {
				n, err := lookup(name)
				if err != nil {
					return err
				}
				s.Trace(n)
			}
		case "set":
			if len(f) != 3 {
				return fmt.Errorf("line %d: set <node> <0|1|x>", lineNo)
			}
			n, err := lookup(f[1])
			if err != nil {
				return err
			}
			var v sim.Value
			switch f[2] {
			case "0":
				v = sim.V0
			case "1":
				v = sim.V1
			case "x", "X":
				v = sim.VX
			default:
				return fmt.Errorf("line %d: bad value %q", lineNo, f[2])
			}
			s.Set(n, v)
		case "release":
			for _, name := range f[1:] {
				n, err := lookup(name)
				if err != nil {
					return err
				}
				s.Release(n)
			}
		case "run":
			before := len(s.Events())
			s.Quiesce()
			for _, e := range s.Events()[before:] {
				fmt.Println(e)
			}
			fmt.Printf("t=%.4f quiescent (%d events processed)\n", s.Now(), s.Steps)
		case "print":
			for _, name := range f[1:] {
				n, err := lookup(name)
				if err != nil {
					return err
				}
				fmt.Printf("%s=%s ", n, s.Value(n))
			}
			fmt.Println()
		case "echo":
			fmt.Println(strings.TrimSpace(strings.TrimPrefix(line, "echo")))
		default:
			return fmt.Errorf("line %d: unknown command %q", lineNo, f[0])
		}
	}
	return sc.Err()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nmossim:", err)
	os.Exit(1)
}
