package main

import (
	"math"
	"reflect"
	"testing"
)

func TestSplitList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"a", []string{"a"}},
		{"a,b,c", []string{"a", "b", "c"}},
		{" a , b ", []string{"a", "b"}},
		{"a,,b,", []string{"a", "b"}},
	}
	for _, c := range cases {
		if got := splitList(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("splitList(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestInputTimesFlag(t *testing.T) {
	it := inputTimes{}
	if err := it.Set("din=2.5"); err != nil {
		t.Fatal(err)
	}
	if it["din"] != 2.5 {
		t.Errorf("din = %g, want 2.5", it["din"])
	}
	if err := it.Set("nodelimiter"); err == nil {
		t.Error("missing '=' must fail")
	}
	if err := it.Set("x=abc"); err == nil {
		t.Error("bad number must fail")
	}
	if it.String() == "" {
		t.Error("flag must stringify")
	}
}

func TestFmtArr(t *testing.T) {
	if got := fmtArr(math.Inf(-1)); got != "static" {
		t.Errorf("fmtArr(-Inf) = %q, want static", got)
	}
	if got := fmtArr(1.25); got != "1.25" {
		t.Errorf("fmtArr(1.25) = %q", got)
	}
}
