// Command tv is the timing analyzer CLI: it reads a transistor netlist in
// the .sim dialect, runs two-phase case analysis, and prints the
// verification report — netlist statistics, flow-analysis summary, checks
// with slacks, the critical path, and (optionally) a minimum-cycle-time
// search.
//
// Usage:
//
//	tv [flags] design.sim
//
//	-period ns      clock period (default 1000)
//	-active frac    per-phase active fraction (default 0.8)
//	-minperiod      binary-search the minimum passing period
//	-noflow         disable signal-flow analysis (pessimistic)
//	-nodes          print per-node settle times
//	-checks n       print the n worst checks (default 10)
//	-slack n        print the n worst-slack transitions (default 10,
//	                0 disables); slack = required − arrival per node
//	-paths k        print the k worst ranked paths with full hop
//	                sequences, streamed lazily from the path generator
//	                (0 disables)
//	-corners list   multi-corner (MCMM) sweep: comma-separated builtin
//	                names (slow, typ, fast) or name:rscale:cscale
//	                derates; prints per-corner summaries and the merged
//	                worst-slack-per-node report
//	-input name=t   input arrival override, repeatable
//	-sethigh a,b    nodes held high for case analysis
//	-setlow a,b     nodes held low for case analysis
//	-erc            run electrical rule checks (ratio rule)
//	-charge         run charge-sharing analysis on dynamic nodes
//	-j n            worker goroutines for model build and propagation
//	                (0 = one per CPU, 1 = serial; results are identical)
//	-trace f.json   write a Chrome trace-event file of the analysis
//	                phases (open in ui.perfetto.dev or chrome://tracing)
//	-cpuprofile f   write a CPU profile (inspect with go tool pprof)
//	-memprofile f   write a heap profile taken after analysis
//	-version        print the version and exit
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"

	"nmostv"
	"nmostv/internal/obs"
	"nmostv/internal/paths"
	"nmostv/internal/report"
	"nmostv/internal/simfile"
)

// version is stamped by the build:
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/tv
var version = "dev"

type inputTimes map[string]float64

func (it inputTimes) String() string { return fmt.Sprint(map[string]float64(it)) }

func (it inputTimes) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("expected name=time, got %q", s)
	}
	t, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return err
	}
	it[name] = t
	return nil
}

func main() {
	period := flag.Float64("period", 1000, "clock period in ns")
	active := flag.Float64("active", 0.8, "per-phase active fraction")
	minPeriod := flag.Bool("minperiod", false, "search the minimum passing period")
	noFlow := flag.Bool("noflow", false, "disable signal-flow analysis")
	nodes := flag.Bool("nodes", false, "print per-node settle times")
	nChecks := flag.Int("checks", 10, "number of worst checks to print")
	nSlack := flag.Int("slack", 10, "number of worst-slack transitions to print (0 = none)")
	nPaths := flag.Int("paths", 0, "number of worst ranked paths to print (0 = none)")
	cornerSpec := flag.String("corners", "", "comma-separated PVT corners for a multi-corner sweep")
	runERC := flag.Bool("erc", false, "run electrical rule checks")
	runCharge := flag.Bool("charge", false, "run charge-sharing analysis")
	setHigh := flag.String("sethigh", "", "comma-separated nodes held high (case analysis)")
	setLow := flag.String("setlow", "", "comma-separated nodes held low (case analysis)")
	jobs := flag.Int("j", 0, "worker goroutines (0 = one per CPU, 1 = serial)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event JSON of the analysis phases")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a post-analysis heap profile to this file")
	showVersion := flag.Bool("version", false, "print the version and exit")
	inputs := inputTimes{}
	flag.Var(inputs, "input", "input arrival override name=ns (repeatable)")
	flag.Parse()

	if *showVersion {
		fmt.Printf("tv %s %s\n", version, runtime.Version())
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tv [flags] design.sim")
		flag.Usage()
		os.Exit(2)
	}

	// os.Exit skips deferred calls, so profile/trace finalization is an
	// explicit function invoked on every exit path after this point.
	var tvObs *obs.Obs
	if *tracePath != "" {
		tvObs = &obs.Obs{Tr: obs.NewTracer()}
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
	}
	finish := func() {
		if *cpuProfile != "" {
			pprof.StopCPUProfile()
		}
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				fatal(err)
			}
			if err := tvObs.Tr.WriteChrome(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
		if *memProfile != "" {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal(err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
			f.Close()
		}
	}

	p := nmostv.DefaultParams()
	sp := tvObs.Span("parse")
	sf, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	nl, err := simfile.Read(sf, flag.Arg(0))
	sf.Close()
	sp.End()
	if err != nil {
		fatal(err)
	}
	prepOpt := nmostv.PrepareOptions{
		DisableFlow: *noFlow,
		SetHigh:     splitList(*setHigh),
		SetLow:      splitList(*setLow),
		Workers:     *jobs,
		Obs:         tvObs,
	}
	d := nmostv.Prepare(nl, p, prepOpt)
	if len(prepOpt.SetHigh) > 0 || len(prepOpt.SetLow) > 0 {
		fmt.Printf("case analysis: high=%v low=%v\n", prepOpt.SetHigh, prepOpt.SetLow)
	}

	stats := d.NL.ComputeStats()
	fmt.Printf("circuit %s: %d transistors (%d enh, %d dep), %d nodes, %d stages, %d timing arcs\n",
		d.NL.Name, stats.Transistors, stats.Enh, stats.Dep, stats.Nodes,
		len(d.Stages.Stages), len(d.Model.Edges))
	fmt.Printf("process: %s\n", p)
	if !*noFlow {
		fmt.Printf("%s\n", d.Flow)
	}
	if issues := d.NL.Validate(); len(issues) > 0 {
		fmt.Printf("netlist findings (%d):\n", len(issues))
		for i, is := range issues {
			if i >= 10 {
				fmt.Printf("  ... %d more\n", len(issues)-10)
				break
			}
			fmt.Printf("  %s\n", is)
		}
	}
	fmt.Println()

	opt := nmostv.AnalyzeOptions{
		InputTime: inputs,
		SetHigh:   prepOpt.SetHigh,
		SetLow:    prepOpt.SetLow,
		Workers:   *jobs,
		Obs:       tvObs,
	}
	sched := nmostv.TwoPhase(*period, *active)
	res, err := d.Analyze(sched, opt)
	if err != nil {
		fatal(err)
	}

	if *minPeriod {
		T, resMin, err := d.MinPeriod(sched, opt, *period/1000, *period, *period/10000)
		if err != nil {
			fmt.Printf("minimum period search: %v\n", err)
		} else {
			fmt.Printf("minimum passing period: %.4g ns (%.4g MHz)\n\n", T, 1000/T)
			res = resMin
		}
	}

	fmt.Printf("schedule: %s\n", res.Sched)
	worstNode, worstT := res.MaxSettle()
	if worstNode != nil {
		fmt.Printf("latest settling node: %s @ %.4g ns\n", worstNode, worstT)
	}
	if slack, ok := res.MinSlack(); ok {
		fmt.Printf("worst slack: %.4g ns\n", slack)
	}
	if tol, ok := res.SkewTolerance(); ok {
		fmt.Printf("clock skew tolerance: %.4g ns\n", tol)
	}
	viol := res.Violations()
	fmt.Printf("checks: %d total, %d violations\n\n", len(res.Checks), len(viol))

	if *nChecks > 0 && len(res.Checks) > 0 {
		fmt.Printf("worst %d checks:\n", min(*nChecks, len(res.Checks)))
		for i, c := range res.Checks {
			if i >= *nChecks {
				break
			}
			fmt.Printf("  %s\n", c)
		}
		fmt.Println()
	}

	fmt.Println("critical path:")
	fmt.Print(nmostv.FormatPath(res.CriticalPath()))

	if *nSlack > 0 {
		req, err := res.Required(context.Background(), opt)
		if err != nil {
			fatal(err)
		}
		rows := slackRows(res.SlackRanking(req, *nSlack), "")
		if len(rows) > 0 {
			fmt.Println()
			fmt.Print(report.SlackTable("worst slack (required − arrival):", rows).String())
		}
	}

	if *nPaths > 0 {
		printPaths(res, *nPaths)
	}

	cornerFail := false
	if *cornerSpec != "" {
		corners, err := nmostv.ParseCorners(*cornerSpec)
		if err != nil {
			fatal(err)
		}
		sw, err := d.AnalyzeCorners(res.Sched, corners, opt)
		if err != nil {
			fatal(err)
		}
		cornerFail = printCorners(sw, *nSlack)
	}

	ruleFail := false
	if *runERC {
		fmt.Println()
		findings := d.CheckERC()
		fmt.Printf("electrical rule checks: %d findings\n", len(findings))
		for _, f := range findings {
			fmt.Printf("  %s\n", f)
			ruleFail = true
		}
	}
	if *runCharge {
		fmt.Println()
		findings := d.CheckCharge()
		hazards := nmostv.ChargeHazards(findings)
		fmt.Printf("charge-sharing analysis: %d dynamic nodes, %d hazards\n",
			len(findings), len(hazards))
		for i, f := range findings {
			if i >= *nChecks {
				fmt.Printf("  ... %d more\n", len(findings)-*nChecks)
				break
			}
			fmt.Printf("  %s\n", f)
		}
		if len(hazards) > 0 {
			ruleFail = true
		}
	}

	if *nodes {
		fmt.Println()
		printSettles(res)
	}

	finish()
	if len(viol) > 0 || ruleFail || cornerFail {
		os.Exit(1)
	}
}

// slackRows converts a core slack ranking to report rows, tagging each
// with the given corner name ("" for single-corner output).
func slackRows(ranked []nmostv.SlackEntry, corner string) []report.SlackRow {
	rows := make([]report.SlackRow, len(ranked))
	for i, e := range ranked {
		rows[i] = report.SlackRow{
			Node: e.Node.Name, Corner: corner, Pol: e.Pol.String(),
			Arrival: e.Arrival, Required: e.Required, Slack: e.Slack,
		}
	}
	return rows
}

// printPaths streams the k worst ranked paths from the lazy generator:
// a header line per path (endpoint, check kind, arrival/required/slack),
// then the hop sequence source-first with per-hop delays and the
// representative device that drives each arc.
func printPaths(res *nmostv.Result, k int) {
	fmt.Println()
	fmt.Printf("worst %d paths:\n", k)
	g := paths.New(res)
	printed := 0
	for ; printed < k; printed++ {
		p, ok := g.Next()
		if !ok {
			break
		}
		wrap := ""
		if p.Wrapped {
			wrap = " wrapped"
		}
		fmt.Printf("#%d  %s %s (%s φ%d%s)  arrival %.4g  required %.4g  slack %s\n",
			p.Rank, res.NL.Nodes[p.Node].Name, p.Pol, p.Kind, p.Phase, wrap,
			p.Arrival, p.Required, report.SignedSlack(p.Slack))
		for _, s := range p.Steps {
			via := ""
			if s.Arc >= 0 {
				if tr := res.NL.TransByID(res.Model.Edges[s.Arc].Via); tr != nil && tr.Gate != nil {
					via = "  via " + tr.Gate.Name
				}
			}
			clamp := ""
			if s.Clamped {
				clamp = "  (clock-clamped)"
			}
			fmt.Printf("    %-20s %-4s @ %-10.4g +%.4g%s%s\n",
				res.NL.Nodes[s.Node].Name, s.Pol, s.Arrival, s.Delay, via, clamp)
		}
	}
	if printed == 0 {
		fmt.Println("  (no ranked paths)")
	}
}

// printCorners renders the multi-corner section: one summary line per
// corner, then the merged worst-slack-per-node ranking with the corner
// that set each row. Returns whether any corner has violations.
func printCorners(sw *nmostv.CornerSweep, nSlack int) (fail bool) {
	fmt.Println()
	sum := report.NewTable("corner summary:", "corner", "r-scale", "c-scale", "worst slack (ns)", "violations")
	for _, cr := range sw.Corners {
		worst := "+inf"
		if sl, ok := cr.Res.MinSlack(); ok {
			worst = report.SignedSlack(sl)
		}
		viol := len(cr.Res.Violations())
		if viol > 0 {
			fail = true
		}
		sum.Add(cr.Corner.Name, cr.Corner.RScale, cr.Corner.CScale, worst, viol)
	}
	fmt.Print(sum.String())

	if nSlack > 0 {
		var rows []report.SlackRow
		for _, e := range sw.Ranking(nSlack) {
			rows = append(rows, report.SlackRow{
				Node: e.Node.Name, Corner: e.Corner, Pol: e.Pol.String(),
				Arrival: e.Arrival, Required: e.Required, Slack: e.Slack,
			})
		}
		if len(rows) > 0 {
			fmt.Println()
			fmt.Print(report.SlackTable("merged worst slack per node (all corners):", rows).String())
		}
	}
	return fail
}

func printSettles(res *nmostv.Result) {
	tab := report.NewTable("node settle times", "node", "rise (ns)", "fall (ns)", "settle (ns)")
	type row struct {
		name             string
		rise, fall, both float64
	}
	var rows []row
	for _, n := range res.NL.Nodes {
		if n.IsSupply() || n.IsClock() {
			continue
		}
		s := res.Settle(n)
		if math.IsInf(s, -1) {
			continue
		}
		rows = append(rows, row{n.Name, res.RiseAt[n.Index], res.FallAt[n.Index], s})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].both > rows[j].both })
	for _, r := range rows {
		tab.Add(r.name, fmtArr(r.rise), fmtArr(r.fall), fmtArr(r.both))
	}
	fmt.Print(tab.String())
}

func fmtArr(v float64) string {
	if math.IsInf(v, -1) {
		return "static"
	}
	return fmt.Sprintf("%.4g", v)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tv:", err)
	os.Exit(1)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
