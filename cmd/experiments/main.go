// Command experiments regenerates the reconstructed evaluation: every
// table (T1–T11), figure (F1–F4), and ablation (A1–A2) documented in
// DESIGN.md, printed as plain text. EXPERIMENTS.md is produced from this
// output.
//
// Usage:
//
//	experiments            # run everything
//	experiments -t T3,F1   # run a subset
//	experiments -j 1       # force the serial engine (0 = one worker per CPU)
//	experiments -cap 100000  # cap the T8–T11 sweeps at this transistor
//	                         # target (CI keeps those jobs fast; committed
//	                         # artifacts come from uncapped runs)
//
// Experiments that produce machine-readable artifacts persist them into
// the current directory: T2 writes BENCH_T2.json (ns/op, transistors/s,
// parallel speedup per sweep size), T6 writes BENCH_T3.json (incremental
// vs full re-analysis per sampled resize), T7 writes BENCH_T4.json
// (load-shedding latency/error curves vs concurrent /delta clients), and
// T8 writes BENCH_T5.json (tiled-chip throughput sweep, 10k → 1M
// transistors, vs the seed-engine baseline), T9 writes BENCH_T6.json
// (3-corner MCMM sweep vs single-corner analysis over the shared plan),
// T10 writes BENCH_T7.json (flight-recorder overhead on the incremental
// apply path, recorder-on vs recorder-off medians), and T11 writes
// BENCH_T8.json (durability cost: snapshot save/restore latency and
// journal overhead on the apply path vs design size).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"nmostv/internal/bench"
)

func main() {
	only := flag.String("t", "", "comma-separated experiment IDs (default all)")
	jobs := flag.Int("j", 0, "worker goroutines (0 = one per CPU, 1 = serial)")
	capN := flag.Int("cap", 0, "drop T8–T11 sweep points above this transistor target (0 = uncapped)")
	flag.Parse()
	bench.Workers = *jobs
	bench.T8Cap = *capN
	bench.T9Cap = *capN
	bench.T10Cap = *capN
	bench.T11Cap = *capN

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	ran := 0
	for _, e := range bench.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		rep := e.Run()
		fmt.Print(rep.String())
		var names []string
		for name := range rep.Artifacts {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := os.WriteFile(name, rep.Artifacts[name], 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("(wrote %s)\n", name)
		}
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing matched -t; known IDs: T1 T2 T3 T4 T5 T6 T7 T8 T9 T10 T11 F1 F2 F3 F4 A1 A2")
		os.Exit(2)
	}
}
