// Command experiments regenerates the reconstructed evaluation: every
// table (T1–T5) and figure (F1–F4) documented in DESIGN.md, printed as
// plain text. EXPERIMENTS.md is produced from this output.
//
// Usage:
//
//	experiments            # run everything
//	experiments -t T3,F1   # run a subset
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nmostv/internal/bench"
)

func main() {
	only := flag.String("t", "", "comma-separated experiment IDs (default all)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	ran := 0
	for _, e := range bench.All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		rep := e.Run()
		fmt.Print(rep.String())
		fmt.Printf("(%s regenerated in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "experiments: nothing matched -t; known IDs: T1 T2 T3 T4 T5 F1 F2 F3 F4")
		os.Exit(2)
	}
}
