// Command nmosgen generates benchmark nMOS circuits in the .sim dialect —
// the stand-in for layout extraction. It can emit any circuit from the
// benchmark suite, or a parameterized MIPS-like datapath.
//
// Usage:
//
//	nmosgen -list
//	nmosgen -circuit mips32r16 -o out.sim
//	nmosgen -circuit datapath -bits 64 -words 64 -shifts 8 -o big.sim
//	nmosgen -circuit tiled -target 1000000 -o chip1m.sim
package main

import (
	"flag"
	"fmt"
	"os"

	"nmostv"
	"nmostv/internal/bench"
	"nmostv/internal/gen"
	"nmostv/internal/netlist"
)

func main() {
	list := flag.Bool("list", false, "list available circuits")
	circuit := flag.String("circuit", "", "circuit name, or 'datapath' for a parameterized datapath")
	bits := flag.Int("bits", 32, "datapath width (with -circuit datapath)")
	words := flag.Int("words", 16, "register count (with -circuit datapath)")
	shifts := flag.Int("shifts", 4, "barrel shifter amounts (with -circuit datapath/tiled)")
	target := flag.Int("target", 1_000_000, "transistor-count floor (with -circuit tiled)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if *list {
		for _, w := range bench.Suite() {
			fmt.Printf("%-14s %s\n", w.Name, w.Note)
		}
		fmt.Printf("%-14s %s\n", "datapath", "parameterized MIPS-like datapath (-bits/-words/-shifts)")
		fmt.Printf("%-14s %s\n", "tiled", "datapath-tile array under one control PLA, scaled to -target transistors")
		return
	}
	if *circuit == "" {
		fmt.Fprintln(os.Stderr, "nmosgen: -circuit required (try -list)")
		os.Exit(2)
	}

	p := nmostv.DefaultParams()
	var nl *netlist.Netlist
	switch {
	case *circuit == "datapath":
		nl = gen.MIPSDatapath(p, gen.DatapathConfig{
			Bits: *bits, Words: *words, ShiftAmounts: *shifts,
		})
	case *circuit == "tiled":
		cfg := gen.DefaultTiledChip(*target)
		if *bits != 32 || *words != 16 || *shifts != 4 {
			cfg.Tile = gen.DatapathConfig{Bits: *bits, Words: *words, ShiftAmounts: *shifts}
		}
		nl = gen.TiledChip(p, cfg)
	default:
		for _, w := range bench.Suite() {
			if w.Name == *circuit {
				nl = w.Build(p)
				break
			}
		}
		if nl == nil {
			fmt.Fprintf(os.Stderr, "nmosgen: unknown circuit %q (try -list)\n", *circuit)
			os.Exit(2)
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nmosgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := nmostv.WriteSim(w, nl); err != nil {
		fmt.Fprintln(os.Stderr, "nmosgen:", err)
		os.Exit(1)
	}
	stats := nl.ComputeStats()
	fmt.Fprintf(os.Stderr, "nmosgen: %s: %d transistors, %d nodes\n",
		nl.Name, stats.Transistors, stats.Nodes)
}
