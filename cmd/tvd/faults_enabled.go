//go:build faultpoint

package main

import (
	"log"
	"os"

	"nmostv/internal/faultpoint"
)

// armFaultPoints arms the fault-injection registry from TVD_FAULTPOINTS
// (e.g. "core.propagate.level=delay:5ms,incr.apply.analyze=error:3").
// Only compiled with -tags faultpoint; the CI chaos-smoke job uses it to
// exercise the daemon's failure paths from the outside.
func armFaultPoints(logger *log.Logger) error {
	spec := os.Getenv("TVD_FAULTPOINTS")
	if spec == "" {
		return nil
	}
	if err := faultpoint.ArmSpec(spec); err != nil {
		return err
	}
	logger.Printf("fault points armed: %s", spec)
	return nil
}
