//go:build faultpoint

package main

import (
	"os"

	"nmostv/internal/faultpoint"
	"nmostv/internal/obs"
)

// armFaultPoints arms the fault-injection registry from TVD_FAULTPOINTS
// (e.g. "core.propagate.level=delay:5ms,incr.apply.analyze=error:3").
// Only compiled with -tags faultpoint; the CI chaos-smoke job uses it to
// exercise the daemon's failure paths from the outside.
func armFaultPoints(lg *obs.Logger) error {
	spec := os.Getenv("TVD_FAULTPOINTS")
	if spec == "" {
		return nil
	}
	if err := faultpoint.ArmSpec(spec); err != nil {
		return err
	}
	lg.Info("fault points armed", obs.F("spec", spec))
	return nil
}
