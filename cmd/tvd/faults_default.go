//go:build !faultpoint

package main

import "nmostv/internal/obs"

// armFaultPoints is a no-op in production builds: the fault-injection
// harness only exists in binaries built with -tags faultpoint (the CI
// chaos-smoke job), so a stray TVD_FAULTPOINTS in the environment cannot
// sabotage a real deployment.
func armFaultPoints(*obs.Logger) error { return nil }
