// Command tvd is the incremental timing daemon: it holds designs in
// memory, accepts netlist deltas over HTTP/JSON, re-analyzes only the
// affected cone, and serves timing queries. See internal/server for the
// endpoint list and DESIGN.md §6 for the architecture.
//
// Usage:
//
//	tvd [flags]
//
//	-addr host:port  listen address (default :8077)
//	-period ns       clock period (default 1000)
//	-active frac     per-phase active fraction (default 0.8)
//	-preload f.sim   load a design at startup, repeatable; the design
//	                 name is the file basename without extension
//	-j n             worker goroutines for model build and propagation
//	                 (0 = one per CPU, 1 = serial; results are identical)
//	-metrics-addr    also serve GET /metrics on a dedicated listener;
//	                 with -pprof, profiles mount only there, keeping
//	                 them off the main address
//	-pprof           mount net/http/pprof under /debug/pprof/.
//	                 Off by default: profiles expose internals and can
//	                 burn CPU, so only enable on a trusted interface
//	                 (prefer pairing with -metrics-addr 127.0.0.1:port)
//	-quiet           drop the per-request log lines
//	-version         print the version and exit
//
// Quick start:
//
//	tvd -preload testdata/tutorial.sim &
//	curl localhost:8077/node/dout
//	curl -X POST localhost:8077/delta -d '[{"op":"resize","id":3,"w":8}]'
//	curl localhost:8077/verify
//	curl localhost:8077/metrics
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strings"

	"nmostv/internal/clocks"
	"nmostv/internal/obs"
	"nmostv/internal/server"
	"nmostv/internal/tech"
)

// version is stamped by the build:
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/tvd
var version = "dev"

type preloads []string

func (p *preloads) String() string { return strings.Join(*p, ",") }

func (p *preloads) Set(s string) error {
	*p = append(*p, s)
	return nil
}

// mountPprof attaches the net/http/pprof handlers explicitly rather than
// via its import side effect, so they land on the mux we choose instead
// of http.DefaultServeMux.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	period := flag.Float64("period", 1000, "clock period in ns")
	active := flag.Float64("active", 0.8, "per-phase active fraction")
	jobs := flag.Int("j", 0, "worker goroutines (0 = one per CPU, 1 = serial)")
	metricsAddr := flag.String("metrics-addr", "", "also serve /metrics (and -pprof) on this dedicated address; pprof then stays off the main address")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof (exposes internals; only enable on a trusted interface)")
	quiet := flag.Bool("quiet", false, "disable per-request logging")
	showVersion := flag.Bool("version", false, "print the version and exit")
	var pre preloads
	flag.Var(&pre, "preload", "load a .sim design at startup (repeatable)")
	flag.Parse()

	if *showVersion {
		fmt.Printf("tvd %s\n", version)
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tvd [flags]  (designs are loaded via -preload or POST /load)")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "tvd: ", log.LstdFlags)
	o := obs.NewObs()
	cfg := server.Config{
		Params:  tech.Default(),
		Sched:   clocks.TwoPhase(*period, *active),
		Workers: *jobs,
		Logf:    logger.Printf,
		Obs:     o,
	}
	if *quiet {
		cfg.Logf = nil
	}
	srv := server.New(cfg)

	for _, path := range pre {
		f, err := os.Open(path)
		if err != nil {
			logger.Fatalf("preload: %v", err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		sess, err := srv.Load(name, f)
		f.Close()
		if err != nil {
			logger.Fatalf("preload %s: %v", path, err)
		}
		info := sess.Info()
		logger.Printf("preloaded %q: %d devices, %d nodes, %d stages, %d arcs",
			name, info.Devices, info.Nodes, info.Stages, info.Arcs)
	}

	handler := srv.Handler()
	if *metricsAddr != "" {
		// Dedicated observability listener. Metrics stay harmless on the
		// main address too; pprof mounts only here, so the main address
		// can be exposed without exposing profiles.
		omux := http.NewServeMux()
		omux.Handle("GET /metrics", o.Reg.Handler())
		if *enablePprof {
			mountPprof(omux)
		}
		go func() {
			logger.Printf("metrics on %s (pprof %v)", *metricsAddr, *enablePprof)
			if err := http.ListenAndServe(*metricsAddr, omux); err != nil {
				logger.Fatalf("metrics listener: %v", err)
			}
		}()
	} else if *enablePprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mountPprof(mux)
		handler = mux
		logger.Printf("pprof mounted on main address %s", *addr)
	}

	logger.Printf("tvd %s listening on %s (period %g ns)", version, *addr, *period)
	if err := http.ListenAndServe(*addr, handler); err != nil {
		logger.Fatal(err)
	}
}
