// Command tvd is the incremental timing daemon: it holds designs in
// memory, accepts netlist deltas over HTTP/JSON, re-analyzes only the
// affected cone, and serves timing queries. See internal/server for the
// endpoint list and DESIGN.md §6 for the architecture.
//
// Usage:
//
//	tvd [flags]
//
//	-addr host:port  listen address (default :8077)
//	-period ns       clock period (default 1000)
//	-active frac     per-phase active fraction (default 0.8)
//	-corners list    analyze every design at these PVT corners alongside
//	                 the base process: comma-separated builtin names
//	                 (slow, typ, fast) or name:rscale:cscale derates;
//	                 enables per-corner /slack, /critical?corner=, and
//	                 the /corners route
//	-preload f.sim   load a design at startup, repeatable; the design
//	                 name is the file basename without extension
//	-j n             worker goroutines for model build and propagation
//	                 (0 = one per CPU, 1 = serial; results are identical)
//	-max-inflight n  concurrent analysis requests admitted before the
//	                 server sheds with 503 + Retry-After (default 32,
//	                 negative disables shedding)
//	-request-timeout d  per-request deadline on analysis routes; over
//	                 deadline the analysis aborts and the request gets
//	                 504 (default 30s, negative disables)
//	-max-designs n   design registry cap; loading past it evicts the
//	                 least-recently-used design (default 16, negative
//	                 disables eviction)
//	-history n       retained analysis versions per design, the window
//	                 GET /diff and /versions can reach back over
//	                 (default 4; 1 keeps only the latest)
//	-drain-timeout d how long SIGINT/SIGTERM waits for in-flight
//	                 requests before forcing exit (default 10s)
//	-metrics-addr    also serve GET /metrics on a dedicated listener;
//	                 with -pprof, profiles mount only there, keeping
//	                 them off the main address
//	-pprof           mount net/http/pprof under /debug/pprof/.
//	                 Off by default: profiles expose internals and can
//	                 burn CPU, so only enable on a trusted interface
//	                 (prefer pairing with -metrics-addr 127.0.0.1:port)
//	-log-format f    request/lifecycle log encoding: text (logfmt-style)
//	                 or json (one object per line)
//	-log-level l     minimum log severity: debug, info, warn, or error
//	-flight-recorder n  flight-recorder ring size: the daemon retains the
//	                 last n request traces plus the last n pinned
//	                 (errored, shed, panicked, slow) traces, dumpable at
//	                 GET /debug/flightrecorder and /debug/requests
//	                 (default 64, negative disables)
//	-slow-request d  pin requests at least this slow in the flight
//	                 recorder (default 1s, negative disables)
//	-slo-latency d   latency objective behind the per-route
//	                 tvd_slo_requests_total{slo="good"|"bad"} counters
//	                 (default 500ms, negative disables)
//	-state-dir dir   durable sessions: every design keeps a versioned
//	                 snapshot plus a crash-safe delta journal under dir;
//	                 eviction becomes evict-to-snapshot with rehydration
//	                 on next touch, and a restart (clean or crashed)
//	                 warm-starts from the persisted state. Empty (the
//	                 default) disables durability
//	-fsync-every n   journal fsync batching: 1 (default) syncs every
//	                 committed batch, n > 1 every nth batch, negative
//	                 never (the OS decides when)
//	-quiet           drop the per-request log lines
//	-version         print the version and exit
//
// Lifecycle: GET /healthz answers 200 for the life of the process; GET
// /readyz flips to 503 the moment a termination signal arrives, then the
// daemon drains in-flight requests (bounded by -drain-timeout) and exits
// 0. A second signal forces immediate exit.
//
// Quick start:
//
//	tvd -preload testdata/tutorial.sim &
//	curl localhost:8077/node/dout
//	curl -X POST localhost:8077/delta -d '[{"op":"resize","id":3,"w":8}]'
//	curl localhost:8077/verify
//	curl localhost:8077/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"nmostv/internal/clocks"
	"nmostv/internal/obs"
	"nmostv/internal/server"
	"nmostv/internal/tech"
)

// version is stamped by the build:
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/tvd
var version = "dev"

type preloads []string

func (p *preloads) String() string { return strings.Join(*p, ",") }

func (p *preloads) Set(s string) error {
	*p = append(*p, s)
	return nil
}

// mountPprof attaches the net/http/pprof handlers explicitly rather than
// via its import side effect, so they land on the mux we choose instead
// of http.DefaultServeMux.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// newHTTPServer wraps a handler in an http.Server with conservative
// transport timeouts (slow-loris protection; the per-request analysis
// deadline is the server middleware's job, so no WriteTimeout here — it
// would sever long legitimate analyses mid-response).
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}
}

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	period := flag.Float64("period", 1000, "clock period in ns")
	active := flag.Float64("active", 0.8, "per-phase active fraction")
	cornerSpec := flag.String("corners", "", "comma-separated PVT corners to analyze alongside the base process")
	jobs := flag.Int("j", 0, "worker goroutines (0 = one per CPU, 1 = serial)")
	maxInflight := flag.Int("max-inflight", 0, "concurrent analysis requests before shedding with 503 (0 = default, negative disables)")
	requestTimeout := flag.Duration("request-timeout", 0, "per-request deadline on analysis routes (0 = default, negative disables)")
	maxDesigns := flag.Int("max-designs", 0, "design registry cap with LRU eviction (0 = default, negative disables)")
	history := flag.Int("history", 0, "retained analysis versions per design for /diff and /versions (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	metricsAddr := flag.String("metrics-addr", "", "also serve /metrics (and -pprof) on this dedicated address; pprof then stays off the main address")
	enablePprof := flag.Bool("pprof", false, "mount net/http/pprof (exposes internals; only enable on a trusted interface)")
	logFormat := flag.String("log-format", "text", "log line encoding: text or json")
	logLevel := flag.String("log-level", "info", "minimum log severity: debug, info, warn, or error")
	flightSize := flag.Int("flight-recorder", 0, "flight-recorder ring size (0 = default, negative disables)")
	slowRequest := flag.Duration("slow-request", 0, "pin requests at least this slow in the flight recorder (0 = default, negative disables)")
	sloLatency := flag.Duration("slo-latency", 0, "latency objective for the per-route SLO counters (0 = default, negative disables)")
	stateDir := flag.String("state-dir", "", "persist sessions (snapshot + journal) under this directory; empty disables durability")
	fsyncEvery := flag.Int("fsync-every", 0, "journal fsync batching: 1 (default) every batch, n>1 every nth, negative never")
	quiet := flag.Bool("quiet", false, "disable per-request logging")
	showVersion := flag.Bool("version", false, "print the version and exit")
	var pre preloads
	flag.Var(&pre, "preload", "load a .sim design at startup (repeatable)")
	flag.Parse()

	if *showVersion {
		fmt.Printf("tvd %s %s\n", version, runtime.Version())
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tvd [flags]  (designs are loaded via -preload or POST /load)")
		flag.Usage()
		os.Exit(2)
	}

	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tvd: -log-format: %v\n", err)
		os.Exit(2)
	}
	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tvd: -log-level: %v\n", err)
		os.Exit(2)
	}
	lg := obs.NewLogger(os.Stderr, format, level)
	fatal := func(msg string, fields ...obs.Field) {
		lg.Error(msg, fields...)
		os.Exit(1)
	}
	if err := armFaultPoints(lg); err != nil {
		fatal("fault points", obs.F("err", err))
	}
	corners, err := tech.ParseCorners(*cornerSpec)
	if err != nil {
		fatal("-corners", obs.F("err", err))
	}
	if *stateDir != "" {
		// Fail fast on an unusable state dir: a daemon that silently ran
		// without the durability it was asked for would betray the
		// operator at the worst possible moment.
		if err := os.MkdirAll(*stateDir, 0o755); err != nil {
			fatal("-state-dir", obs.F("dir", *stateDir), obs.F("err", err))
		}
	}
	o := obs.NewObs()
	cfg := server.Config{
		Params:         tech.Default(),
		Sched:          clocks.TwoPhase(*period, *active),
		Workers:        *jobs,
		Corners:        corners,
		MaxInflight:    *maxInflight,
		RequestTimeout: *requestTimeout,
		MaxDesigns:     *maxDesigns,
		HistoryDepth:   *history,
		Log:            lg,
		Obs:            o,
		Version:        version,
		FlightSize:     *flightSize,
		SlowRequest:    *slowRequest,
		SLOLatency:     *sloLatency,
		StateDir:       *stateDir,
		FsyncEvery:     *fsyncEvery,
	}
	if *quiet {
		cfg.Log = nil
	}
	srv := server.New(cfg)

	for _, path := range pre {
		f, err := os.Open(path)
		if err != nil {
			fatal("preload", obs.F("err", err))
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		sess, err := srv.Load(context.Background(), name, f)
		f.Close()
		if err != nil {
			fatal("preload", obs.F("file", path), obs.F("err", err))
		}
		info := sess.Info()
		lg.Info("design preloaded", obs.F("design", name),
			obs.F("devices", info.Devices), obs.F("nodes", info.Nodes),
			obs.F("stages", info.Stages), obs.F("arcs", info.Arcs))
	}

	// Warm restart in the background: the listener comes up immediately
	// and /readyz answers 503 "restoring" until every persisted design is
	// rehydrated, so orchestrators hold traffic without timing out the
	// process start. The flag flips synchronously, before the goroutine is
	// even scheduled, so a fast first probe can never see 200 "serving"
	// ahead of the restore window. Preloads above win over persisted
	// state by name.
	srv.BeginRestore()
	go func() {
		if err := srv.WarmRestart(context.Background()); err != nil {
			lg.Warn("warm restart incomplete", obs.F("err", err))
		}
	}()

	handler := srv.Handler()
	var metricsSrv *http.Server
	if *metricsAddr != "" {
		// Dedicated observability listener. Metrics stay harmless on the
		// main address too; pprof mounts only here, so the main address
		// can be exposed without exposing profiles.
		omux := http.NewServeMux()
		omux.Handle("GET /metrics", o.Reg.Handler())
		if *enablePprof {
			mountPprof(omux)
		}
		metricsSrv = newHTTPServer(*metricsAddr, omux)
		go func() {
			lg.Info("metrics listener up", obs.F("addr", *metricsAddr), obs.F("pprof", *enablePprof))
			if err := metricsSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				// The observability listener is an accessory: losing it
				// (port clash, say) should not take the daemon down.
				lg.Warn("metrics listener failed", obs.F("err", err))
			}
		}()
	} else if *enablePprof {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mountPprof(mux)
		handler = mux
		lg.Info("pprof mounted on main address", obs.F("addr", *addr))
	}

	main := newHTTPServer(*addr, handler)

	// First SIGINT/SIGTERM starts the drain; a second forces exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() {
		lg.Info("tvd listening", obs.F("version", version), obs.F("addr", *addr),
			obs.F("period_ns", *period))
		serveErr <- main.ListenAndServe()
	}()

	select {
	case err := <-serveErr:
		fatal("serve", obs.F("err", err))
	case <-ctx.Done():
	}
	stop() // restore default signal handling: a second signal kills us
	lg.Info("shutdown signal received; draining", obs.F("budget", *drainTimeout))
	srv.BeginDrain()

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := main.Shutdown(drainCtx); err != nil {
		lg.Warn("drain incomplete", obs.F("err", err))
	}
	if metricsSrv != nil {
		metricsSrv.Shutdown(drainCtx)
	}
	// With the request stream quiet, snapshot every dirty session so the
	// next start is a warm restart with no journal replay.
	if err := srv.SnapshotAll(drainCtx); err != nil {
		lg.Warn("drain snapshots incomplete", obs.F("err", err))
	}
	lg.Info("drained; exiting")
}
