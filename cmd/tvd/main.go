// Command tvd is the incremental timing daemon: it holds designs in
// memory, accepts netlist deltas over HTTP/JSON, re-analyzes only the
// affected cone, and serves timing queries. See internal/server for the
// endpoint list and DESIGN.md §6 for the architecture.
//
// Usage:
//
//	tvd [flags]
//
//	-addr host:port  listen address (default :8077)
//	-period ns       clock period (default 1000)
//	-active frac     per-phase active fraction (default 0.8)
//	-preload f.sim   load a design at startup, repeatable; the design
//	                 name is the file basename without extension
//	-j n             worker goroutines for model build and propagation
//	                 (0 = one per CPU, 1 = serial; results are identical)
//	-version         print the version and exit
//
// Quick start:
//
//	tvd -preload testdata/tutorial.sim &
//	curl localhost:8077/node/dout
//	curl -X POST localhost:8077/delta -d '[{"op":"resize","id":3,"w":8}]'
//	curl localhost:8077/verify
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"nmostv/internal/clocks"
	"nmostv/internal/server"
	"nmostv/internal/tech"
)

// version is stamped by the build:
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/tvd
var version = "dev"

type preloads []string

func (p *preloads) String() string { return strings.Join(*p, ",") }

func (p *preloads) Set(s string) error {
	*p = append(*p, s)
	return nil
}

func main() {
	addr := flag.String("addr", ":8077", "listen address")
	period := flag.Float64("period", 1000, "clock period in ns")
	active := flag.Float64("active", 0.8, "per-phase active fraction")
	jobs := flag.Int("j", 0, "worker goroutines (0 = one per CPU, 1 = serial)")
	showVersion := flag.Bool("version", false, "print the version and exit")
	var pre preloads
	flag.Var(&pre, "preload", "load a .sim design at startup (repeatable)")
	flag.Parse()

	if *showVersion {
		fmt.Printf("tvd %s\n", version)
		return
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: tvd [flags]  (designs are loaded via -preload or POST /load)")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "tvd: ", log.LstdFlags)
	srv := server.New(server.Config{
		Params:  tech.Default(),
		Sched:   clocks.TwoPhase(*period, *active),
		Workers: *jobs,
		Logf:    logger.Printf,
	})

	for _, path := range pre {
		f, err := os.Open(path)
		if err != nil {
			logger.Fatalf("preload: %v", err)
		}
		name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
		sess, err := srv.Load(name, f)
		f.Close()
		if err != nil {
			logger.Fatalf("preload %s: %v", path, err)
		}
		info := sess.Info()
		logger.Printf("preloaded %q: %d devices, %d nodes, %d stages, %d arcs",
			name, info.Devices, info.Nodes, info.Stages, info.Arcs)
	}

	logger.Printf("tvd %s listening on %s (period %g ns)", version, *addr, *period)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		logger.Fatal(err)
	}
}
