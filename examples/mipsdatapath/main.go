// mipsdatapath: the flagship scenario — verify a full 32-bit MIPS-like
// execution datapath (register file with decoders, operand latches,
// ripple-carry ALU, PLA-controlled barrel shifter, precharged result bus)
// exactly the way the original timing verifier was used on the MIPS chip:
// find the minimum cycle time, identify the critical path, and show the
// per-phase timing picture.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"nmostv"
	"nmostv/internal/gen"
	"nmostv/internal/report"
)

func main() {
	bits := flag.Int("bits", 32, "datapath width")
	words := flag.Int("words", 16, "register count")
	flag.Parse()

	p := nmostv.DefaultParams()
	nl := gen.MIPSDatapath(p, gen.DatapathConfig{
		Bits: *bits, Words: *words, ShiftAmounts: 4,
	})
	stats := nl.ComputeStats()
	fmt.Printf("%s: %d transistors (%d pass), %d nodes, %d precharged, %d outputs\n",
		nl.Name, stats.Transistors, stats.Passes, stats.Nodes, stats.Precharged, stats.Outputs)

	d := nmostv.Prepare(nl, p, nmostv.PrepareOptions{})
	fmt.Println(d.Flow)

	base := nmostv.TwoPhase(5000, 0.8)
	T, res, err := d.MinPeriod(base, nmostv.AnalyzeOptions{}, 1, base.Period, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum cycle time: %.4g ns (%.3g MHz at 4µm nMOS)\n", T, 1000/T)
	fmt.Printf("schedule: %s\n", res.Sched)
	slack, _ := res.MinSlack()
	fmt.Printf("worst slack: %.4g ns over %d checks\n\n", slack, len(res.Checks))

	fmt.Println("critical path (the ALU carry ripple, as on the real MIPS):")
	path := res.CriticalPath()
	if len(path) > 14 {
		fmt.Print(nmostv.FormatPath(path[:7]))
		fmt.Printf("  ... %d intermediate arcs ...\n", len(path)-14)
		fmt.Print(nmostv.FormatPath(path[len(path)-7:]))
	} else {
		fmt.Print(nmostv.FormatPath(path))
	}

	// Settle-time distribution across the cycle.
	var times []float64
	for _, n := range res.NL.Nodes {
		if n.IsSupply() || n.IsClock() {
			continue
		}
		if s := res.Settle(n); !math.IsInf(s, -1) {
			times = append(times, s)
		}
	}
	fmt.Println()
	fmt.Print(report.Histogram(
		fmt.Sprintf("settle-time distribution over the %.4g ns cycle (%d nodes)", T, len(times)),
		times, 16))
}
