// dynamicalu: full verification sign-off of a dynamic (precharged
// Manchester-carry) ALU slice — the workflow a 1983 chip team ran before
// tapeout, using every analysis in the library:
//
//  1. electrical rule checks (ratio rule);
//  2. charge-sharing analysis on the precharged carry rail;
//  3. worst-case timing and minimum cycle time, comparing the bare carry
//     chain against the re-buffered production design;
//  4. clock-skew tolerance from the best-case (race) analysis.
package main

import (
	"fmt"
	"log"

	"nmostv"
	"nmostv/internal/gen"
	"nmostv/internal/netlist"
)

const bits = 16

func buildALU(bufferEvery int) (*nmostv.Netlist, []*netlist.Node) {
	p := nmostv.DefaultParams()
	b := gen.New(fmt.Sprintf("dynalu%d_buf%d", bits, bufferEvery), p)
	phi1 := b.Clock("phi1", 1)
	phi2 := b.Clock("phi2", 2)

	// Operand latches feed the adder.
	var a, c []*netlist.Node
	for i := 0; i < bits; i++ {
		_, qa := b.Latch(phi1, b.Input(fmt.Sprintf("a%d", i)))
		_, qb := b.Latch(phi1, b.Input(fmt.Sprintf("b%d", i)))
		a = append(a, b.Inverter(qa))
		c = append(c, b.Inverter(qb))
	}
	sums, carries := b.ManchesterCarry(a, c, b.Input("cin"), phi1, phi2,
		gen.ManchesterOptions{BufferEvery: bufferEvery})

	// Result latches close the pipe stage.
	outs := make([]*netlist.Node, 0, bits+1)
	for _, s := range sums {
		_, q := b.Latch(phi1, s) // captured by the next φ1 (wrapped check)
		outs = append(outs, b.Output(b.Inverter(q)))
	}
	b.Output(b.Inverter(carries[len(carries)-1]))
	return b.Finish(), outs
}

func main() {
	p := nmostv.DefaultParams()
	fmt.Println("process:", p)

	for _, bufferEvery := range []int{0, 4} {
		nl, _ := buildALU(bufferEvery)
		stats := nl.ComputeStats()
		label := "bare carry rail"
		if bufferEvery > 0 {
			label = fmt.Sprintf("re-buffered every %d bits", bufferEvery)
		}
		fmt.Printf("\n=== %d-bit dynamic ALU, %s (%d transistors) ===\n",
			bits, label, stats.Transistors)

		d := nmostv.Prepare(nl, p, nmostv.PrepareOptions{})
		fmt.Println(d.Flow)

		// 1. Electrical rules.
		if findings := d.CheckERC(); len(findings) == 0 {
			fmt.Println("ERC: clean (ratio rule satisfied everywhere)")
		} else {
			for _, f := range findings {
				fmt.Println("ERC:", f)
			}
		}

		// 2. Charge sharing on the dynamic nodes.
		ch := d.CheckCharge()
		hazards := nmostv.ChargeHazards(ch)
		fmt.Printf("charge sharing: %d dynamic nodes, %d hazards\n", len(ch), len(hazards))
		for i, f := range hazards {
			if i >= 3 {
				fmt.Printf("  ... %d more\n", len(hazards)-3)
				break
			}
			fmt.Println("  ", f)
		}

		// 3. Timing: minimum cycle.
		base := nmostv.TwoPhase(5000, 0.8)
		T, res, err := d.MinPeriod(base, nmostv.AnalyzeOptions{}, 1, base.Period, 0.05)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("minimum cycle time: %.4g ns (%.3g MHz)\n", T, 1000/T)
		if tol, ok := res.SkewTolerance(); ok {
			fmt.Printf("clock skew tolerance: %.4g ns\n", tol)
		}
		path := res.CriticalPath()
		fmt.Printf("critical path: %d arcs, ending at %s\n",
			len(path)-1, path[len(path)-1].Node)
	}

	fmt.Println("\nthe re-buffered rail trades a handful of devices for the quadratic")
	fmt.Println("propagate-run delay — the design point shipped in real datapaths.")
}
