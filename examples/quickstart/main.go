// Quickstart: build a small clocked nMOS circuit with the generator API,
// run the timing analyzer, and read the report — the five-minute tour of
// the library.
package main

import (
	"fmt"
	"log"

	"nmostv"
	"nmostv/internal/gen"
)

func main() {
	p := nmostv.DefaultParams()
	fmt.Println("process:", p)

	// A two-stage pipeline: input → φ1 latch → 4-input NAND + inverters
	// → φ2 latch → output. The kind of fragment a datapath is made of.
	b := gen.New("quickstart", p)
	phi1 := b.Clock("phi1", 1)
	phi2 := b.Clock("phi2", 2)

	var nandIns []*nmostv.Node
	for i := 0; i < 4; i++ {
		in := b.Input(fmt.Sprintf("in%d", i))
		_, q := b.Latch(phi1, in)
		nandIns = append(nandIns, b.Inverter(q)) // restore true polarity
	}
	logic := b.Inverter(b.Nand(nandIns...))
	_, q := b.Latch(phi2, logic)
	out := b.Output(b.Inverter(q))
	nl := b.Finish()

	fmt.Println("built:", nl)

	// Prepare: stage extraction, signal-flow analysis, RC timing arcs.
	d := nmostv.Prepare(nl, p, nmostv.PrepareOptions{})
	fmt.Println("flow:", d.Flow)
	fmt.Println("timing arcs:", len(d.Model.Edges))

	// Analyze one clock cycle.
	sched := nmostv.TwoPhase(50, 0.8)
	res, err := d.Analyze(sched, nmostv.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nschedule:", res.Sched)
	fmt.Printf("output %s settles at %.4g ns\n", out, res.Settle(out))
	slack, _ := res.MinSlack()
	fmt.Printf("worst slack: %.4g ns, violations: %d\n", slack, len(res.Violations()))

	// How fast can this pipeline be clocked?
	T, resMin, err := d.MinPeriod(sched, nmostv.AnalyzeOptions{}, 0.5, 50, 0.01)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nminimum cycle time: %.4g ns (%.4g MHz)\n", T, 1000/T)
	fmt.Println("binding path:")
	fmt.Print(nmostv.FormatPath(resMin.CriticalPath()))
}
