// passchain: the pass-transistor engineering question the RC models exist
// to answer — how long may a pass chain grow before a restoring buffer
// pays for itself? The example sweeps chain length, comparing the static
// analyzer's Elmore prediction against event-driven simulation and a naive
// lumped model, then finds the buffering crossover.
package main

import (
	"fmt"

	"nmostv"
	"nmostv/internal/bench"
	"nmostv/internal/report"
)

func main() {
	p := nmostv.DefaultParams()
	fmt.Println("process:", p)
	fmt.Println()

	pts := bench.MeasurePassChains(20)
	tab := report.NewTable("pass-chain delay vs length k",
		"k", "analyzer Elmore (ns)", "simulator (ns)", "naive lumped (ns)", "buffered (ns)")
	crossover := -1
	for _, pt := range pts {
		buffered := "-"
		if pt.K >= 2 {
			buffered = fmt.Sprintf("%.4g", pt.Buffered)
			if crossover < 0 && pt.Buffered < pt.TV {
				crossover = pt.K
			}
		}
		tab.Add(pt.K, pt.TV, pt.Sim, pt.Naive, buffered)
	}
	fmt.Print(tab.String())
	fmt.Println()

	fmt.Println("observations:")
	last := pts[len(pts)-1]
	mid := pts[len(pts)/2-1]
	fmt.Printf("  - quadratic growth: delay(k=%d)/delay(k=%d) = %.2f (length ratio %.2f)\n",
		last.K, mid.K, last.TV/mid.TV, float64(last.K)/float64(mid.K))
	fmt.Printf("  - the naive lumped model underestimates k=%d by %.1f×\n",
		last.K, last.TV/last.Naive)
	if crossover > 0 {
		fmt.Printf("  - a restoring buffer wins from k = %d on\n", crossover)
	}
	fmt.Printf("  - analyzer tracks simulation within %.1f%% at k=%d\n",
		100*(last.TV/last.Sim-1), last.K)
}
