// platiming: control-logic timing — build a NOR-NOR PLA, verify its logic
// function against the switch-level simulator for every input vector, and
// report the static per-output worst-case delays with their critical
// paths. PLAs generated the control signals of every 1983 chip; their
// input-to-output delay gated when control could be trusted within a
// phase.
package main

import (
	"fmt"
	"log"

	"nmostv"
	"nmostv/internal/gen"
	"nmostv/internal/netlist"
	"nmostv/internal/report"
	"nmostv/internal/sim"
)

// Personality: 3 inputs, 5 products, 3 outputs (a tiny opcode decoder).
//
//	p0 = a·b̄    p1 = ā·c    p2 = b·c    p3 = ā·b̄·c̄    p4 = a·c
//	out0 = p0 + p2, out1 = p1 + p3, out2 = p4
var (
	andPlane = [][]int{
		{1, -1, 0},
		{-1, 0, 1},
		{0, 1, 1},
		{-1, -1, -1},
		{1, 0, 1},
	}
	orPlane = [][]int{{0, 2}, {1, 3}, {4}}
)

// reference computes the PLA function in software.
func reference(a, b, c bool) [3]bool {
	p0 := a && !b
	p1 := !a && c
	p2 := b && c
	p3 := !a && !b && !c
	p4 := a && c
	return [3]bool{p0 || p2, p1 || p3, p4}
}

func main() {
	p := nmostv.DefaultParams()
	b := gen.New("pladecode", p)
	ins := []*netlist.Node{b.Input("a"), b.Input("b"), b.Input("c")}
	outs := b.PLA(ins, andPlane, orPlane)
	for _, o := range outs {
		b.Output(o)
	}
	nl := b.Finish()
	stats := nl.ComputeStats()
	fmt.Printf("%s: %d transistors, %d nodes\n\n", nl.Name, stats.Transistors, stats.Nodes)

	// Functional verification: simulate all 8 input vectors.
	s := sim.New(nl, nil, p)
	toV := func(x bool) sim.Value {
		if x {
			return sim.V1
		}
		return sim.V0
	}
	fails := 0
	for v := 0; v < 8; v++ {
		a, bb, c := v&1 != 0, v&2 != 0, v&4 != 0
		s.Set(ins[0], toV(a))
		s.Set(ins[1], toV(bb))
		s.Set(ins[2], toV(c))
		s.Quiesce()
		want := reference(a, bb, c)
		for i, o := range outs {
			got := s.Value(o)
			if got != toV(want[i]) {
				fmt.Printf("MISMATCH in=%d%d%d out%d: got %v want %v\n",
					b2i(a), b2i(bb), b2i(c), i, got, toV(want[i]))
				fails++
			}
		}
	}
	if fails == 0 {
		fmt.Println("switch-level simulation matches the reference truth table on all 8 vectors")
	}

	// Static timing: per-output worst-case settle.
	d := nmostv.Prepare(nl, p, nmostv.PrepareOptions{})
	res, err := d.Analyze(nmostv.TwoPhase(1000, 0.8), nmostv.AnalyzeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	tab := report.NewTable("\nper-output worst-case delay (inputs change at t=0)",
		"output", "rise (ns)", "fall (ns)", "settle (ns)")
	var worst *nmostv.Node
	worstT := -1.0
	for _, o := range outs {
		st := res.Settle(o)
		tab.Add(o.Name, res.RiseAt[o.Index], res.FallAt[o.Index], st)
		if st > worstT {
			worst, worstT = o, st
		}
	}
	fmt.Print(tab.String())

	fmt.Printf("\nworst output %s settles at %.4g ns via:\n", worst, worstT)
	pol := nmostv.Rise
	if res.FallAt[worst.Index] > res.RiseAt[worst.Index] {
		pol = nmostv.Fall
	}
	fmt.Print(nmostv.FormatPath(res.Path(worst, pol)))
}

func b2i(x bool) int {
	if x {
		return 1
	}
	return 0
}
