// Package-level benchmarks: one per reconstructed table and figure (see
// DESIGN.md §3 and EXPERIMENTS.md), plus micro-benchmarks of the pipeline
// stages. Run with:
//
//	go test -bench=. -benchmem
//
// The Benchmark{Table,Figure}* entries time one full regeneration of the
// corresponding experiment; cmd/experiments prints their actual content.
package nmostv_test

import (
	"testing"

	"nmostv"
	"nmostv/internal/bench"
	"nmostv/internal/gen"
	"nmostv/internal/sim"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTableT1 regenerates the benchmark inventory.
func BenchmarkTableT1(b *testing.B) { benchExperiment(b, "T1") }

// BenchmarkTableT2 regenerates the cost-vs-size sweep.
func BenchmarkTableT2(b *testing.B) { benchExperiment(b, "T2") }

// BenchmarkTableT3 regenerates the accuracy-vs-simulation comparison.
func BenchmarkTableT3(b *testing.B) { benchExperiment(b, "T3") }

// BenchmarkTableT4 regenerates the flagship verification report.
func BenchmarkTableT4(b *testing.B) { benchExperiment(b, "T4") }

// BenchmarkTableT5 regenerates the flow-analysis ablation.
func BenchmarkTableT5(b *testing.B) { benchExperiment(b, "T5") }

// BenchmarkFigureF1 regenerates the settle-time distribution.
func BenchmarkFigureF1(b *testing.B) { benchExperiment(b, "F1") }

// BenchmarkFigureF2 regenerates the runtime scaling curve.
func BenchmarkFigureF2(b *testing.B) { benchExperiment(b, "F2") }

// BenchmarkFigureF3 regenerates the pass-chain sweep.
func BenchmarkFigureF3(b *testing.B) { benchExperiment(b, "F3") }

// BenchmarkFigureF4 regenerates the ratio sweep.
func BenchmarkFigureF4(b *testing.B) { benchExperiment(b, "F4") }

// Micro-benchmarks of the pipeline stages on the flagship datapath.

func flagship(b *testing.B) *nmostv.Netlist {
	b.Helper()
	return gen.MIPSDatapath(nmostv.DefaultParams(), gen.DefaultDatapath())
}

// BenchmarkGenerateDatapath times netlist construction alone.
func BenchmarkGenerateDatapath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		flagship(b)
	}
}

// BenchmarkPrepare times stage extraction + flow analysis + arc building.
func BenchmarkPrepare(b *testing.B) {
	nl := flagship(b)
	p := nmostv.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nmostv.Prepare(nl, p, nmostv.PrepareOptions{})
	}
}

// BenchmarkAnalyze times one case analysis over the prepared design.
func BenchmarkAnalyze(b *testing.B) {
	nl := flagship(b)
	p := nmostv.DefaultParams()
	d := nmostv.Prepare(nl, p, nmostv.PrepareOptions{})
	sched := nmostv.TwoPhase(5000, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Analyze(sched, nmostv.AnalyzeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinPeriod times the binary search to the minimum cycle time.
func BenchmarkMinPeriod(b *testing.B) {
	nl := flagship(b)
	p := nmostv.DefaultParams()
	d := nmostv.Prepare(nl, p, nmostv.PrepareOptions{})
	sched := nmostv.TwoPhase(5000, 0.8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := d.MinPeriod(sched, nmostv.AnalyzeOptions{}, 1, 5000, 0.05); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorCycle times the switch-level referee clocking the
// flagship datapath through one full two-phase cycle.
func BenchmarkSimulatorCycle(b *testing.B) {
	p := nmostv.DefaultParams()
	nl := gen.MIPSDatapath(p, gen.DatapathConfig{Bits: 16, Words: 8, ShiftAmounts: 4})
	s := sim.New(nl, nil, p)
	phi1, phi2 := nl.Lookup("phi1"), nl.Lookup("phi2")
	s.Set(phi1, sim.V0)
	s.Set(phi2, sim.V0)
	for _, in := range nl.Inputs() {
		s.Set(in, sim.V0)
	}
	s.Quiesce()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Set(phi1, sim.V1)
		s.Quiesce()
		s.Set(phi1, sim.V0)
		s.Quiesce()
		s.Set(phi2, sim.V1)
		s.Quiesce()
		s.Set(phi2, sim.V0)
		s.Quiesce()
	}
}

// BenchmarkSimfileRoundTrip times serialization + parsing of the flagship.
func BenchmarkSimfileRoundTrip(b *testing.B) {
	nl := flagship(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf discardingBuffer
		if err := nmostv.WriteSim(&buf, nl); err != nil {
			b.Fatal(err)
		}
	}
}

type discardingBuffer struct{ n int }

func (d *discardingBuffer) Write(p []byte) (int, error) {
	d.n += len(p)
	return len(p), nil
}

// BenchmarkAblationA1 regenerates the carry-implementation ablation.
func BenchmarkAblationA1(b *testing.B) { benchExperiment(b, "A1") }

// BenchmarkAblationA2 regenerates the slack-vs-skew sweep.
func BenchmarkAblationA2(b *testing.B) { benchExperiment(b, "A2") }
